"""Shared block-Arnoldi cycle used by Block GMRES and (Block) GCRO-DR.

One cycle performs up to ``max_steps`` block-Arnoldi iterations with the
(possibly preconditioned) operator, optionally projecting every candidate
block against a fixed orthonormal basis ``C_k`` first — that projection is
the ``(I - C_k C_k^H) A`` operator of the paper's Fig. 1 line 26, and its
coefficients accumulate into ``E_k = C_k^H A Z_{m-k}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..la.blockqr import BlockHessenbergQR
from ..la.orthogonalization import (LOW_SYNC_SCHEMES, make_arnoldi_engine,
                                    project_out, qr_factorization,
                                    sketch_size)
from ..trace import tracer as trace
from ..util import ledger
from ..util.misc import column_norms, default_rng
from .base import ConvergenceHistory

__all__ = ["CycleState", "block_arnoldi_cycle", "complete_block"]


def complete_block(q: np.ndarray, rank: int, *, against: list[np.ndarray] | None = None,
                   rng_seed: int = 7) -> np.ndarray:
    """Fill the trailing ``p - rank`` (zero) columns of ``q`` with random
    directions orthonormalized against its leading columns and ``against``.

    Used when the initial residual block of a cycle is rank deficient (some
    RHS columns converged or became colinear): the deficient directions carry
    a zero row in ``S``, so they do not perturb the least-squares solution —
    they merely keep the block Arnoldi basis full width.
    """
    n, p = q.shape
    if rank >= p:
        return q
    rng = default_rng(rng_seed)
    fill = rng.standard_normal((n, p - rank))
    if np.iscomplexobj(q):
        fill = fill + 1j * rng.standard_normal((n, p - rank))
    fill = fill.astype(q.dtype)
    stack = [q[:, :rank]] + (against or [])
    width = sum(b.shape[1] for b in stack)
    if width:
        if width > rank:
            # extra blocks to project against: the pieces are individually
            # orthonormal but need not be mutually orthogonal, so stack and
            # re-orthonormalize before projecting
            basis, _ = np.linalg.qr(np.column_stack(stack))
        else:
            # only q's own leading columns — already orthonormal; skip the
            # redundant stack-and-re-QR
            basis = q[:, :rank]
        fill, _ = project_out(basis, fill, scheme="imgs")
    qf, _, rk = qr_factorization(fill, "cholqr_rr")
    out = np.array(q, copy=True)
    out[:, rank:rank + rk] = qf[:, :rk]
    # in the (vanishingly unlikely) event the random fill was itself
    # deficient, leave the remaining columns zero: harmless for the LS solve.
    return out


@dataclass
class CycleState:
    """Everything a caller needs after one block-Arnoldi cycle."""

    v_blocks: list[np.ndarray]            # j+1 orthonormal blocks (n x p)
    z_blocks: list[np.ndarray]            # j preconditioned blocks (n x p)
    hqr: BlockHessenbergQR
    e_cols: list[np.ndarray] = field(default_factory=list)  # C^H A Z columns
    steps: int = 0
    breakdown: bool = False
    converged_early: bool = False
    plan_stats: dict | None = None        # optimizer counters (compiled only)
    e0: np.ndarray | None = None          # C^H v1 seed projection (low-sync)
    sketch: object | None = None          # SketchState (sketched scheme only)

    def v_stack(self, count: int | None = None) -> np.ndarray:
        blocks = self.v_blocks if count is None else self.v_blocks[:count]
        return np.concatenate(blocks, axis=1)

    def z_stack(self, count: int | None = None) -> np.ndarray:
        blocks = self.z_blocks if count is None else self.z_blocks[:count]
        return np.concatenate(blocks, axis=1)

    def ek_matrix(self) -> np.ndarray:
        """E_k = C_k^H A Z (k x jp)."""
        if not self.e_cols:
            return np.zeros((0, 0))
        return np.concatenate(self.e_cols, axis=1)


def block_arnoldi_cycle(op_apply, inner_m, v1: np.ndarray, s1: np.ndarray, *,
                        max_steps: int,
                        ck: np.ndarray | None = None,
                        ortho: str = "cgs",
                        qr_scheme: str = "cholqr",
                        deflation_tol: float = 1e-12,
                        targets: np.ndarray | None = None,
                        history: ConvergenceHistory | None = None,
                        identity_m: bool = False,
                        iteration_budget: int | None = None,
                        plan: str = "interpret",
                        sck: np.ndarray | None = None,
                        ) -> CycleState:
    """Run up to ``max_steps`` block-Arnoldi iterations.

    Parameters
    ----------
    op_apply:
        the (left-preconditioned if applicable) operator, block in/block out.
    inner_m:
        preconditioner applied inside the loop (identity for left/none).
    v1, s1:
        QR factors of the starting residual block (paper lines 11/24).
    ck:
        optional fixed orthonormal basis to project out (GCRO-DR's ``C_k``);
        projection coefficients are recorded as ``E_k`` columns.
    targets:
        absolute per-column residual targets; the cycle stops early once all
        columns are below target (checked via the Hessenberg-QR tail, which
        equals the true residual norm in exact arithmetic).
    history:
        optional convergence history to append per-iteration tail norms to.
    iteration_budget:
        remaining global iteration allowance (max_it enforcement).
    plan:
        ``"interpret"`` runs this loop; ``"compiled"`` lowers it to an
        execution plan (``repro.plan``) for the low-synchronization
        schemes — bit-identical counts and iterates, interpreter as
        oracle.  Legacy schemes (cgs/imgs/mgs) always interpret.
    sck:
        pre-sketched recycled space ``S C_k`` maintained by the sketched
        recycler (``recycle_space="sketched"`` only).  When supplied, the
        seed projection ``C_k^H v1`` and the sketch of ``v1`` assemble in
        ONE fused prologue reduction instead of two, and the seed
        coefficients are exposed as ``state.e0``.
    """
    if plan == "compiled" and ortho in LOW_SYNC_SCHEMES:
        from ..plan.block_cycle import compiled_block_arnoldi_cycle
        return compiled_block_arnoldi_cycle(
            op_apply, inner_m, v1, s1, max_steps=max_steps, ck=ck,
            ortho=ortho, qr_scheme=qr_scheme, deflation_tol=deflation_tol,
            targets=targets, history=history, identity_m=identity_m,
            iteration_budget=iteration_budget, sck=sck)
    dtype = v1.dtype
    p = v1.shape[1]
    led = ledger.current()
    tr = trace.current()

    # Low-synchronization schemes run through the fused Arnoldi engine: the
    # C_k projection, all basis projections, and the normalizer Gram travel
    # in at most two stacked reductions per step (one for ``sketched``)
    # instead of the legacy path's separate project_out + QR round trips.
    engine = None
    e0 = None
    if ortho in LOW_SYNC_SCHEMES:
        k = ck.shape[1] if ck is not None else 0
        max_cols = (max_steps + 1) * p + k
        if sck is not None and k and ortho == "sketched":
            # Sketched recycling: ``S C_k`` is maintained across cycles by
            # the recycler, so the seed projection C_k^H v1 and the sketch
            # of v1 are the only global row sums left in the prologue —
            # they assemble in ONE fused reduction instead of two.
            s_dim = int(sck.shape[0])
            e0 = np.asarray(ck).conj().T @ v1
            v1 = v1 - ck @ e0
            led.flop(ledger.Kernel.BLAS3, 4.0 * v1.shape[0] * k * p)
            led.reduction(nbytes=(s_dim + k) * p * v1.itemsize)
            engine = make_arnoldi_engine(ortho, tol=deflation_tol,
                                         max_cols=max_cols)
            engine.begin_recycled(v1, ck, sck)
        else:
            if k:
                # The stacked projector treats [C_k | V] as one orthonormal
                # basis, so v1 must be C_k-orthogonal when the engine starts.
                # The caller's residual only satisfies C^H r = 0 up to the
                # previous cycle's least-squares roundoff, and that cross term
                # compounds across cycles and same-system solves; one fused
                # projection per cycle caps the seed at rounding level.  The
                # removed component is O(drift), so no renormalization is
                # needed (and v1 @ s1 = r is preserved to the same order).
                e0 = np.asarray(ck).conj().T @ v1
                v1 = v1 - ck @ e0
                led.flop(ledger.Kernel.BLAS3, 4.0 * v1.shape[0] * k * p)
                led.reduction(nbytes=k * p * v1.itemsize)
            engine = make_arnoldi_engine(ortho, tol=deflation_tol,
                                         max_cols=max_cols)
            engine.begin(v1, ck)

    hqr = BlockHessenbergQR(max_steps, p, np.asarray(s1, dtype=dtype), dtype=dtype)
    state = CycleState(v_blocks=[v1], z_blocks=[], hqr=hqr, e0=e0)

    steps = max_steps
    if iteration_budget is not None:
        steps = min(steps, max(iteration_budget, 0))

    for j in range(steps):
        with tr.span("arnoldi_step", j=j):
            vj = state.v_blocks[j]
            zj = vj if identity_m else \
                np.asarray(inner_m(vj)).astype(dtype, copy=False)
            state.z_blocks.append(zj)
            w = op_apply(zj)
            with tr.span("ortho", scheme=ortho):
                if engine is not None:
                    q, h, s, rank, e_col = engine.step(state.v_blocks, w,
                                                       ck=ck)
                    if ck is not None and ck.shape[1]:
                        state.e_cols.append(e_col)
                else:
                    if ck is not None and ck.shape[1]:
                        w, e_col = project_out(ck, w, scheme="cgs")
                        state.e_cols.append(e_col)
                    scale = float(np.max(column_norms(w), initial=0.0))
                    basis = np.concatenate(state.v_blocks, axis=1)
                    w2, h = project_out(basis, w, scheme=ortho)
                    if qr_scheme in ("cholqr", "cholqr_rr"):
                        q, s, rank = qr_factorization(w2, qr_scheme,
                                                      tol=deflation_tol,
                                                      scale=scale)
                    else:
                        q, s, rank = qr_factorization(w2, qr_scheme,
                                                      tol=deflation_tol)
            h_col = np.concatenate([h, s], axis=0)
            res = hqr.add_column(h_col)
            state.steps = j + 1
        if history is not None:
            history.append(res)
        led.event("arnoldi_step")
        if rank < p:
            # block breakdown: terminate the cycle; the caller restarts from
            # the freshly computed residual (rank-revealing QR at restart
            # deflates for real, cf. paper section V-C).
            state.breakdown = True
            break
        state.v_blocks.append(q)
        if targets is not None and np.all(res <= targets):
            state.converged_early = True
            break
    if engine is not None and hasattr(engine, "export_state"):
        state.sketch = engine.export_state()
    return state
