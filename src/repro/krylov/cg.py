"""(Pseudo-block) Preconditioned Conjugate Gradient.

Used both as a standalone solver for SPD systems and — with a fixed, small
iteration count — as the *variable* smoother inside the multigrid
preconditioner of the paper's elasticity experiment (``-mg_levels_ksp_type
cg -mg_levels_ksp_max_it 4`` makes the multigrid cycles nonlinear, forcing
FGMRES/FGCRO-DR on the outside).

The ``p`` right-hand sides are fused: one SpMM per iteration and batched
column-wise inner products (two global reductions per iteration, as in any
textbook PCG).
"""

from __future__ import annotations

import numpy as np

from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import as_block, column_norms
from ..util.options import Options
from .base import (ConvergenceHistory, IdentityPreconditioner, SolveResult,
                   as_operator, as_preconditioner, initial_state,
                   residual_targets)

__all__ = ["cg"]


def _coldot(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Column-wise <x_j, y_j> in one fused reduction."""
    led = ledger.current()
    led.reduction(nbytes=x.shape[1] * x.itemsize)
    led.flop(Kernel.BLAS1, 4.0 * x.size)
    return np.einsum("ij,ij->j", x.conj(), y)


def cg(a, b, m=None, *, options: Options | None = None,
       x0: np.ndarray | None = None) -> SolveResult:
    """Solve the SPD system ``A X = B`` with fused pseudo-block PCG.

    Iterates every column until *all* columns satisfy the relative
    tolerance (converged columns are frozen).  ``options.max_it`` doubles
    as the fixed smoother length when ``options.tol`` is unreachable.
    """
    options = options or Options(krylov_method="cg")
    a = as_operator(a)
    prec = as_preconditioner(m)
    identity_m = isinstance(prec, IdentityPreconditioner)
    b_in = as_block(b)
    squeeze = np.asarray(b).ndim == 1

    x, b2, r = initial_state(a, b_in, x0)
    n, p = b2.shape
    targets = residual_targets(b2, options.tol)
    led = ledger.current()

    history = ConvergenceHistory(rhs_norms=column_norms(b2))
    rn = column_norms(r)
    history.append(rn)
    converged = rn <= targets
    active = ~converged

    z = r if identity_m else np.asarray(prec(r))
    d = z.copy()
    rz = _coldot(r, z)

    it = 0
    while np.any(active) and it < options.max_it:
        ad = a.matmat(d)
        dad = _coldot(d, ad)
        # frozen/stalled columns: keep alpha at zero so they stop moving
        safe = np.abs(dad) > 0
        alpha = np.zeros(p, dtype=rz.dtype)
        alpha[safe & active] = rz[safe & active] / dad[safe & active]
        x += d * alpha
        r = r - ad * alpha
        rn = column_norms(r)
        led.reduction(nbytes=p * 8)
        history.append(rn)
        newly = active & (rn <= targets)
        converged |= newly
        active &= ~newly
        z = r if identity_m else np.asarray(prec(r))
        rz_new = _coldot(r, z)
        beta = np.zeros(p, dtype=rz.dtype)
        nz = np.abs(rz) > 0
        beta[nz & active] = rz_new[nz & active] / rz[nz & active]
        d = z + d * beta
        rz = rz_new
        it += 1

    result_x = x[:, 0] if squeeze else x
    return SolveResult(
        x=result_x, converged=converged, iterations=it,
        history=history, method="cg",
        info={"block_size": p},
    )
