"""(Block, Flexible) GCRO-DR — Krylov subspace recycling, paper Fig. 1.

GCRO-DR(m, k) maintains a k-dimensional recycled subspace ``(U_k, C_k)``
with ``A U_k = C_k`` and ``C_k^H C_k = I`` across restarts *and across
linear solves in a sequence* ``A_i X_i = B_i``.  Each restart cycle runs
``m - k`` steps of (block) GMRES with the projected operator
``(I - C_k C_k^H) A`` and augments the minimization space with ``U_k``.

Implemented here, following the paper:

* **block extension**: everything operates on ``n x p`` blocks, so
  BGCRO-DR falls out of the same code (the recycled space is k *vectors*
  regardless of ``p``);
* **flexible variant** (FGCRO-DR): basis blocks ``Z_j = M(V_j)`` are
  stored, and ``U_k`` is assembled from ``Z`` so it lives in solution
  space — valid under variable preconditioning (Carvalho et al.);
* **eq. (2)**: the harmonic-Ritz left-hand side of the first cycle is
  built from the incrementally computed QR of the block Hessenberg;
* **strategies A / B**: eq. (3a) (one extra fused reduction) or eq. (3b)
  (communication-free) right-hand side for the generalized eigenproblem;
* **same-system fast path**: for sequences with an unchanged operator,
  skip the re-orthonormalization of ``U_k`` (lines 3-7) and the recycle
  update at restarts (lines 31-38).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..la.orthogonalization import (LOW_SYNC_SCHEMES, SCHEMES, cholqr,
                                    cholqr2, householder_qr, project_out,
                                    qr_factorization)
from ..trace import tracer as trace
from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import as_block, column_norms
from ..util.options import Options
from ..verify import checker_for
from .base import (ConvergenceHistory, IdentityPreconditioner, SolveResult,
                   as_operator, initial_state, residual_targets)
from .cycle import block_arnoldi_cycle, complete_block
from .deflation import (generalized_ritz_vectors, harmonic_ritz_vectors,
                        sketched_harmonic_ritz_vectors)
from .gmres import setup_preconditioning
from .recycling import RecycledSubspace
from .sketch_recycle import SketchedRecycler, sketch_drift_probe

__all__ = ["gcrodr"]


def _solve_right_triangular(u: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Compute ``U R^{-1}`` via a triangular solve (no explicit inverse)."""
    return sla.solve_triangular(r.T, u.T, lower=True).T


def _harvest(small: np.ndarray, pk: np.ndarray, *, rtol: float = 1e-12
             ) -> tuple[np.ndarray, np.ndarray]:
    """Stable version of paper lines 18-20 / 35-37 in the small space.

    Given the small matrix (``\\bar H_m`` or ``G_m``) and the selected
    eigenvector basis ``P_k``, compute the column-pivoted QR of
    ``small @ P_k`` and trim numerically dependent directions, so the new
    recycled pair stays well conditioned even when the Ritz vectors are
    nearly degenerate.

    Returns ``(qf, s)`` such that the caller forms ``C_new = [C V] @ qf``
    and ``U_new = [U~ Z] @ s`` with ``small @ s = qf`` exactly (to rounding).
    """
    prod = small @ pk
    qf, rf, piv = sla.qr(prod, mode="economic", pivoting=True)
    ledger.current().flop(Kernel.QR, 4.0 * prod.shape[0] * prod.shape[1] ** 2)
    d = np.abs(np.diagonal(rf))
    if d.size == 0 or d[0] == 0.0:
        return prod[:, :0], pk[:, :0]
    rank = int(np.count_nonzero(d > rtol * d[0]))
    qf = qf[:, :rank]
    s = _project_solve(pk[:, piv[:rank]], rf[:rank, :rank])
    return qf, s


def _exact_pair(u_k: np.ndarray, c_k: np.ndarray, op_apply
                ) -> tuple[np.ndarray, np.ndarray]:
    """Re-establish ``A U_k = C_k`` and ``C_k^H C_k = I`` exactly.

    Schemes whose Krylov basis is only approximately (or sketch-)
    orthonormal assemble a recycled pair whose identities inherit the basis
    drift — and that drift *compounds* across restarts, because the next
    update's small-space solve amplifies whatever error ``A U_k - C_k``
    carries in.  Re-deriving the pair from the operator (one extra
    ``A U_k`` on k columns plus a Householder QR, exactly the paper's
    lines 3-7 recipe) resets both invariants to rounding level every time,
    so the recycle checks stay as tight as under the exact schemes.
    """
    if c_k.shape[1] == 0:
        return u_k, c_k
    au = op_apply(u_k)
    q2, r2 = householder_qr(au)      # charges its own flop + reduction
    return _project_solve(u_k, r2), q2


def _tidy_pair(u_k: np.ndarray, c_k: np.ndarray, op_apply, scheme: str
               ) -> tuple[np.ndarray, np.ndarray, bool]:
    """Scheme-dependent recycled-pair repair after a harvest or update.

    Inexact-basis schemes used to take the full operator re-derivation
    (:func:`_exact_pair`) unconditionally; now the repair is *drift-gated*:
    a one-reduction sketch-space probe estimates ``||C^H C - I||/sqrt(k)``
    and the expensive re-derivation only runs (under a ``recycle_repair``
    trace span) when the estimate exceeds the scheme's registry ceiling.
    ``cgs2_1r`` keeps an exact basis but is held to a *tighter*
    orthonormality ceiling than restart-compounded ``C_k^H C_k`` drift
    allows (the update path mixes ``[C V]`` and amplifies incoming error
    geometrically), so one QR of ``C_k`` resets its orthonormality while
    preserving ``A U_k = C_k`` exactly: ``C = Q2 R  =>  A (U R^-1) = Q2``.
    The exact single/two-pass schemes are left alone — their looser
    ceiling absorbs the drift, matching historical behavior.

    Returns ``(u, c, exact)``: ``exact=False`` means the gate skipped the
    repair, so the caller owes one :func:`_exact_pair` at the solve's
    adoption boundary before packaging the space.
    """
    info = SCHEMES[scheme]
    if not info.exact_basis:
        if c_k.shape[1] == 0:
            return u_k, c_k, True
        drift = sketch_drift_probe(c_k)
        if drift <= info.orth_tol:
            return u_k, c_k, False
        with trace.current().span("recycle_repair", kind="drift"):
            ledger.current().event("recycle_repair")
            u2, c2 = _exact_pair(u_k, c_k, op_apply)
        return u2, c2, True
    if scheme in LOW_SYNC_SCHEMES and c_k.shape[1]:
        q2, rfac = householder_qr(c_k)
        return _project_solve(u_k, rfac), q2, True
    return u_k, c_k, True


def _gram_reduce(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """x^H y counted as one fused global reduction."""
    led = ledger.current()
    led.flop(Kernel.BLAS3, 2.0 * x.shape[0] * x.shape[1] * y.shape[1])
    led.reduction(nbytes=x.shape[1] * y.shape[1] * x.itemsize)
    return x.conj().T @ y


def gcrodr(a, b, m=None, *, options: Options | None = None,
           x0: np.ndarray | None = None,
           recycle: RecycledSubspace | None = None,
           same_system: bool | None = None) -> SolveResult:
    """Solve ``A X = B`` with (Block/Flexible) GCRO-DR(m, k).

    Parameters
    ----------
    a, b, m, x0:
        as in :func:`repro.krylov.gmres.gmres`.
    options:
        must carry ``recycle = k`` with ``0 < k < gmres_restart``.
    recycle:
        a :class:`RecycledSubspace` from a previous solve in the sequence
        (mutated-by-replacement: the updated space is returned in
        ``result.info["recycle"]``).
    same_system:
        overrides the same-operator detection.  Defaults to
        ``options.recycle_same_system or recycle.matches_operator(A)``.
    """
    options = options or Options(krylov_method="gcrodr", recycle=10)
    k = options.recycle
    if k <= 0:
        raise ValueError("GCRO-DR requires options.recycle (k) > 0")
    a = as_operator(a)
    op_apply, inner_m, left_m = setup_preconditioning(a, m, options)
    b_in = as_block(b)
    squeeze = np.asarray(b).ndim == 1

    x, b2, r = initial_state(a, b_in, x0)
    if left_m is not None:
        b2 = np.asarray(left_m(b2))
        r = np.asarray(left_m(r)) if x0 is not None else b2.copy()
    n, p = b2.shape
    dtype = x.dtype
    targets = residual_targets(b2, options.tol)
    identity_m = isinstance(inner_m, IdentityPreconditioner)
    led = ledger.current()
    tr = trace.current()
    chk = checker_for(options, context="gcrodr")

    history = ConvergenceHistory(rhs_norms=column_norms(b2))
    rn = column_norms(r)
    history.append(rn)
    converged = rn <= targets

    m_restart = options.gmres_restart
    inner_steps = max(m_restart - k, 1)
    total_it = 0
    cycles = 0
    breakdown_seen = False

    u_k: np.ndarray | None = None
    c_k: np.ndarray | None = None

    # Sketched recycling: the pair travels sketch-whitened; the recycler's
    # sketch dimension is what the Arnoldi engine adopts (via the ``sck``
    # it is handed), so both live in the same SRHT image.
    sketched_mode = options.recycle_space == "sketched"
    skr = SketchedRecycler(n=n, max_cols=(inner_steps + 1) * p + k) \
        if sketched_mode else None
    pair_exact = True

    def _sketch_tidy(u: np.ndarray, c: np.ndarray,
                     sc_raw: np.ndarray | None = None
                     ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Sketch-whitened repair with the lazy full-space fallback.

        When the caller hands a locally derived candidate sketch
        (``S C_new`` assembled from the maintained ``S C_k`` and the
        engine's ``S V``) the whitening is communication-free; without
        one (breakdown cycles with a short engine state) the recycler
        re-sketches, paying one assembly reduction.
        """
        if sc_raw is not None:
            u2, c2, ok = skr.whiten_local(u, c, sc_raw)
        else:
            u2, c2, ok = skr.whiten(u, c)
        if ok:
            return u2, c2, False
        with tr.span("recycle_repair", kind="sketch_drift"):
            led.event("recycle_repair")
            skr.repairs += 1
            u2, c2 = _exact_pair(u, c, op_apply)
            skr.adopt(u2, c2)
        return u2, c2, True

    def _explicit_residual() -> np.ndarray:
        if left_m is None:
            return b2 - op_apply(x)
        return np.asarray(left_m(b_in.astype(dtype) - a.matmat(x)))

    # ------------------------------------------------------------------
    # Lines 1-21: initialization — either reuse a recycled space or run a
    # plain (block) GMRES cycle and harvest harmonic Ritz vectors from it.
    # ------------------------------------------------------------------
    if recycle is not None and recycle.k > 0:
        u_k = np.asarray(recycle.u, dtype=dtype).copy()
        c_k = np.asarray(recycle.c, dtype=dtype).copy()
        if same_system is None:
            same_system = options.recycle_same_system or recycle.matches_operator(a.tag)
        if not same_system:
            # lines 3-7: re-orthonormalize against the *new* operator.
            # Low-synchronization schemes route this through CholQR2
            # (BLAS-3, two reductions, shift-protected first pass); on a
            # (near-)deficient block they fall back — like the legacy
            # schemes always do — to pivoted Householder QR
            # (TSQR-equivalent communication: one reduction), because the
            # recycled space may be arbitrarily ill-conditioned under the
            # new operator and plain CholQR would square that conditioning.
            au = op_apply(u_k)
            adopted = False
            if options.orthogonalization in LOW_SYNC_SCHEMES and u_k.shape[1]:
                try:
                    q, rfac = cholqr2(au)
                except np.linalg.LinAlgError:
                    q = None
                if q is not None:
                    d = np.abs(np.diagonal(rfac))
                    if d.size and np.all(
                            d > options.deflation_tol * max(d.max(), 1e-300)):
                        c_k = q
                        u_k = _project_solve(u_k, rfac)
                        adopted = True
            if not adopted:
                q, rfac, piv = sla.qr(au, mode="economic", pivoting=True)
                led.flop(Kernel.QR, 4.0 * n * u_k.shape[1] ** 2)
                led.reduction(nbytes=u_k.shape[1] ** 2 * au.itemsize)
                d = np.abs(np.diagonal(rfac))
                rank = int(np.count_nonzero(
                    d > options.deflation_tol * max(d[0], 1e-300))) \
                    if d.size else 0
                if rank == 0:
                    u_k = np.zeros((n, 0), dtype=dtype)
                    c_k = np.zeros((n, 0), dtype=dtype)
                else:
                    c_k = np.ascontiguousarray(q[:, :rank])
                    u_k = _project_solve(u_k[:, piv[:rank]], rfac[:rank, :rank])
        if u_k.shape[1]:
            # the recycled identities must hold here whether they were just
            # re-established (lines 3-7) or assumed unchanged (the
            # same-system skip) — the skip is exactly what the checker
            # guards, since a stale/corrupt space fails silently otherwise
            chk.check_recycle(u_k, c_k, op_apply=op_apply,
                              what="adopted recycle space"
                              + (" (same-system skip)" if same_system else ""))
            if sketched_mode:
                # adoption boundary: one fused reduction sketches the
                # (exactly orthonormal) pair for the whole solve
                skr.adopt(u_k, c_k)
            # lines 8-9: project the initial residual onto the recycled space
            chr0 = _gram_reduce(c_k, r)
            x += u_k @ chr0
            r = r - c_k @ chr0
            led.flop(Kernel.BLAS3, 4.0 * n * u_k.shape[1] * p)
            rn = column_norms(r)
            led.reduction(nbytes=p * 8)
            history.append(rn)
            converged = rn <= targets
    else:
        # First system of a sequence: Fig. 1's "A_i != A_{i-1}" guard is
        # vacuously true (there is no predecessor), so the recycle space is
        # always refined at restarts, whatever the same-system option says.
        same_system = False

    if u_k is None or u_k.shape[1] == 0:
        # lines 11-20: one full (block) GMRES cycle, then harmonic Ritz
        v1, s1, rank = qr_factorization(r, "cholqr_rr", tol=options.deflation_tol)
        if rank == 0:
            converged[:] = True
        else:
            if rank < p:
                breakdown_seen = True
                v1 = complete_block(v1, rank)
            with tr.span("cycle", index=cycles, kind="harvest"):
                state = block_arnoldi_cycle(
                    op_apply, inner_m, v1, s1, max_steps=m_restart,
                    ortho=options.orthogonalization, qr_scheme=options.qr,
                    deflation_tol=options.deflation_tol, targets=targets,
                    history=history, identity_m=identity_m,
                    iteration_budget=options.max_it - total_it,
                    plan=options.plan)
            total_it += state.steps
            cycles += 1
            breakdown_seen |= state.breakdown
            if state.steps:
                with tr.span("least_squares"):
                    y = state.hqr.solve()
                    z = state.z_stack(state.steps)
                    x += z @ y
                    led.flop(Kernel.BLAS3, 2.0 * n * z.shape[1] * p)
                if chk.wants_full and not state.breakdown:
                    vst = state.v_stack()
                    chk.check_orthonormality(vst, what="harvest-cycle basis")
                    chk.check_arnoldi(op_apply, z, vst,
                                      state.hqr.hessenberg(),
                                      what="harvest-cycle Arnoldi relation")
                r = _explicit_residual()
                rn = column_norms(r)
                led.reduction(nbytes=p * 8)
                converged = rn <= targets
                if not chk.is_off and not state.breakdown:
                    safe = np.where(history.rhs_norms > 0,
                                    history.rhs_norms, 1.0)
                    chk.check_residual_gap(history.records[-1] * safe, rn,
                                           history.rhs_norms, targets,
                                           what="harvest-cycle restart")
                history.records[-1] = rn / np.where(history.rhs_norms > 0,
                                                    history.rhs_norms, 1.0)
                # lines 16-20: harvest the recycled space
                hbar = state.hqr.hessenberg()
                sk = state.sketch
                use_sketch_eig = (sketched_mode and sk is not None
                                  and not state.breakdown
                                  and sk.qs.shape[1] == hbar.shape[0])
                with tr.span("eig", kind="harmonic_ritz"):
                    if use_sketch_eig:
                        # harmonic Ritz of the *sketched* LS problem: the
                        # basis Gram G_V = (S V)^H (S V) is local algebra
                        # on the engine's whitened sketch state
                        t0 = sk.t0
                        gv = np.eye(hbar.shape[0], dtype=dtype)
                        gv[:t0.shape[0], :t0.shape[0]] = t0.conj().T @ t0
                        pk = sketched_harmonic_ritz_vectors(
                            hbar, gv, k, dtype=dtype,
                            target=options.recycle_target)
                    else:
                        pk = harmonic_ritz_vectors(
                            hbar, state.hqr.triangular(),
                            state.hqr.last_subdiagonal_block(),
                            p, k, dtype=dtype, target=options.recycle_target)
                if pk.shape[1]:
                    with tr.span("recycle_update", kind="harvest"):
                        qf, s = _harvest(hbar, pk)
                        vstack = state.v_stack()
                        c_k = vstack @ qf
                        u_k = z @ s
                        led.flop(Kernel.BLAS3,
                                 4.0 * n * vstack.shape[1] * qf.shape[1])
                        if sketched_mode:
                            sc_raw = None
                            if use_sketch_eig:
                                sv = sk.sketched_basis()
                                if sv.shape[1] == vstack.shape[1]:
                                    # S C_new = (S V) qf: local algebra
                                    sc_raw = sv @ qf
                                    led.flop(Kernel.BLAS3,
                                             4.0 * sv.shape[0]
                                             * sv.shape[1] * qf.shape[1])
                            u_k, c_k, pair_exact = _sketch_tidy(
                                u_k, c_k, sc_raw)
                        else:
                            u_k, c_k, pair_exact = _tidy_pair(
                                u_k, c_k, op_apply, options.orthogonalization)
                    chk.check_recycle(u_k, c_k, op_apply=op_apply,
                                      what="harvested recycle space")

    # ------------------------------------------------------------------
    # Lines 22-39: main GCRO-DR loop.
    # ------------------------------------------------------------------
    while not np.all(converged) and total_it < options.max_it:
        if u_k is None or u_k.shape[1] == 0:
            # recycled space vanished: degrade gracefully to plain GMRES cycles
            v1, s1, rank = qr_factorization(r, "cholqr_rr", tol=options.deflation_tol)
            if rank == 0:
                break
            if rank < p:
                breakdown_seen = True
                v1 = complete_block(v1, rank)
            with tr.span("cycle", index=cycles, kind="gmres_fallback"):
                state = block_arnoldi_cycle(
                    op_apply, inner_m, v1, s1, max_steps=m_restart,
                    ortho=options.orthogonalization, qr_scheme=options.qr,
                    deflation_tol=options.deflation_tol, targets=targets,
                    history=history, identity_m=identity_m,
                    iteration_budget=options.max_it - total_it,
                    plan=options.plan)
            total_it += state.steps
            cycles += 1
            if state.steps == 0:
                break
            with tr.span("least_squares"):
                y = state.hqr.solve()
                x += state.z_stack(state.steps) @ y
            r = _explicit_residual()
        else:
            k_cur = u_k.shape[1]
            # line 24: distributed QR of the residual block
            v1, s1, rank = qr_factorization(r, "cholqr_rr", tol=options.deflation_tol)
            if rank == 0:
                break
            if rank < p:
                breakdown_seen = True
                v1 = complete_block(v1, rank, against=[c_k])
            chr_prev = None
            if not sketched_mode:
                chr_prev = _gram_reduce(c_k, r)      # C_k^H R_{j-1} (line 28, 1st term)
            # line 26: m-k steps of (block) GMRES on (I - C C^H) A
            with tr.span("cycle", index=cycles, kind="gcrodr",
                         same_system=bool(same_system)):
                state = block_arnoldi_cycle(
                    op_apply, inner_m, v1, s1, max_steps=inner_steps, ck=c_k,
                    ortho=options.orthogonalization, qr_scheme=options.qr,
                    deflation_tol=options.deflation_tol, targets=targets,
                    history=history, identity_m=identity_m,
                    iteration_budget=options.max_it - total_it,
                    plan=options.plan,
                    sck=skr.sc if sketched_mode else None)
            total_it += state.steps
            cycles += 1
            breakdown_seen |= state.breakdown
            if state.steps == 0:
                break
            # lines 27-29: solve the projected LS problem and update X
            with tr.span("least_squares"):
                y = state.hqr.solve()                # (jp x p)
                ek = state.ek_matrix()               # (k x jp)
                if sketched_mode:
                    # C^H R_{j-1} = (C^H v1) s1: local algebra on the seed
                    # coefficients that rode the fused prologue reduction —
                    # line 28's first term costs no extra communication
                    chr_prev = state.e0 @ np.asarray(s1, dtype=dtype)
                    led.flop(Kernel.BLAS3, 2.0 * k_cur * p * p)
                    yk = chr_prev - ek @ y           # line 28
                else:
                    yk = chr_prev - ek @ y           # line 28 (one small gemm
                    led.reduction(nbytes=k_cur * p * 8)  # + §III-D's reduction)
                z = state.z_stack(state.steps)
                x += u_k @ yk + z @ y
                led.flop(Kernel.BLAS3, 2.0 * n * (k_cur + z.shape[1]) * p)
            if chk.wants_full and not state.breakdown:
                vst = state.v_stack()
                # V must be orthonormal AND orthogonal to C_k (the cycle ran
                # on the projected operator (I - C C^H) A)
                chk.check_orthonormality(np.concatenate([c_k, vst], axis=1),
                                         what="[C_k V] augmented basis")
                chk.check_arnoldi(op_apply, z, vst, state.hqr.hessenberg(),
                                  ck=c_k, ek=ek,
                                  what="projected Arnoldi relation")
            # line 30: explicit residual
            r = _explicit_residual()

            # lines 31-38: update the recycled space (skipped for
            # non-variable sequences — the same-system optimization)
            if not same_system:
                with tr.span("recycle_update",
                             strategy=options.recycle_strategy):
                    led.event("recycle_update")
                    hbar = state.hqr.hessenberg()    # ((j+1)p x jp)
                    jp = hbar.shape[1]
                    sk = state.sketch if sketched_mode else None
                    # the sketch-space update needs the engine state to
                    # cover the whole basis (a breakdown fallback leaves it
                    # one block short) — otherwise run the full-space
                    # machinery for this rare cycle and re-sketch after
                    use_sketch = (sk is not None and not state.breakdown
                                  and skr.sc is not None
                                  and skr.sc.shape[1] == k_cur
                                  and sk.qs.shape[1] == hbar.shape[0])
                    dk = column_norms(u_k)           # line 32: one k-float
                    led.reduction(nbytes=k_cur * 8)  # reduction, O(1) in m
                    dk_safe = np.where(dk > 0, dk, 1.0)
                    u_tilde = u_k / dk_safe
                    gm = np.zeros((k_cur + hbar.shape[0], k_cur + jp),
                                  dtype=dtype)
                    gm[:k_cur, :k_cur] = np.diag((1.0 / dk_safe).astype(dtype))
                    gm[:k_cur, k_cur:] = ek
                    gm[k_cur:, k_cur:] = hbar
                    # W (line 33): strategy B is communication-free in
                    # either space; strategy A pays its one fused Gram
                    # reduction — the cross-Gram [C_k V]^H U_tilde has no
                    # sketch-side substitute because U's candidates mix in
                    # the (never sketched) preconditioned directions Z
                    w = _strategy_w(options.recycle_strategy, gm, c_k,
                                    state.v_stack(), u_tilde, k_cur, jp)
                    scv = None
                    if use_sketch:
                        # S [C_k | V] reconstructed locally from the
                        # maintained S C_k and the engine's whitened state
                        # — used below to derive the candidate sketch;
                        # the eigenproblem itself uses the plain Gram:
                        # after whitening, C_k and V are both
                        # sketch-orthonormal, so weighting by the sketch
                        # cross-Gram would square the embedding
                        # distortion (measured to destabilize the
                        # selection for k ≳ m/3; see
                        # ablation_sketched_recycle)
                        scv = np.concatenate(
                            [skr.sc, sk.sketched_basis()], axis=1)
                    with tr.span("eig", kind="generalized_ritz"):
                        pk = generalized_ritz_vectors(
                            gm, w, k, dtype=dtype,
                            target=options.recycle_target)
                    if pk.shape[1]:
                        qf, s = _harvest(gm, pk)     # line 35 (pivoted)
                        cv = np.concatenate([c_k, state.v_stack()], axis=1)
                        uz = np.concatenate([u_tilde, z], axis=1)
                        c_k = cv @ qf                # line 36
                        u_k = uz @ s                 # line 37
                        led.flop(Kernel.BLAS3,
                                 4.0 * n * cv.shape[1] * qf.shape[1])
                        if sketched_mode:
                            sc_raw = None
                            if scv is not None and scv.shape[1] == qf.shape[0]:
                                # S C_new = (S [C_k V]) qf: local algebra
                                sc_raw = scv @ qf
                                led.flop(Kernel.BLAS3,
                                         4.0 * scv.shape[0]
                                         * scv.shape[1] * qf.shape[1])
                            u_k, c_k, pair_exact = _sketch_tidy(
                                u_k, c_k, sc_raw)
                        else:
                            u_k, c_k, pair_exact = _tidy_pair(
                                u_k, c_k, op_apply, options.orthogonalization)
                        chk.check_recycle(u_k, c_k, op_apply=op_apply,
                                          what="updated recycle space")

        rn = column_norms(r)
        led.reduction(nbytes=p * 8)
        converged = rn <= targets
        if not chk.is_off and not state.breakdown:
            safe = np.where(history.rhs_norms > 0, history.rhs_norms, 1.0)
            chk.check_residual_gap(history.records[-1] * safe, rn,
                                   history.rhs_norms, targets,
                                   what=f"GCRO-DR restart {cycles}")
        history.records[-1] = rn / np.where(history.rhs_norms > 0,
                                            history.rhs_norms, 1.0)
        if options.check_invariants and u_k is not None and u_k.shape[1] \
                and pair_exact:
            check_recycle_invariants(op_apply, u_k, c_k)

    # package the (possibly updated) recycled space for the next solve
    out_recycle = None
    if u_k is not None and u_k.shape[1]:
        if not pair_exact:
            # adoption boundary: consumers of a packaged RecycledSubspace
            # (the next solve's adoption fast path, the setup cache) expect
            # an exactly orthonormal pair — run the deferred repair once
            with tr.span("recycle_repair", kind="adoption_boundary"):
                led.event("recycle_repair")
                u_k, c_k = _exact_pair(u_k, c_k, op_apply)
            pair_exact = True
            chk.check_recycle(u_k, c_k, op_apply=op_apply,
                              what="packaged recycle space")
        out_recycle = RecycledSubspace(u_k, c_k, op_tag=a.tag,
                                       meta={"variant": options.variant,
                                             "k": u_k.shape[1]})

    result_x = x[:, 0] if squeeze else x
    is_block = p > 1
    name = "gcrodr" if not is_block else "bgcrodr"
    if options.variant == "flexible":
        name = "f" + name
    info = {"variant": options.variant, "restart": m_restart, "k": k,
            "block_size": p, "recycle": out_recycle,
            "strategy": options.recycle_strategy,
            "same_system": bool(same_system)}
    if not chk.is_off:
        info["verify"] = chk.report()
    return SolveResult(
        x=result_x, converged=converged, iterations=total_it,
        history=history, method=name, restarts=cycles,
        breakdown=breakdown_seen,
        info=info,
    )


def _project_solve(pk: np.ndarray, rf: np.ndarray) -> np.ndarray:
    """``P_k R^{-1}`` with a least-squares fallback for singular ``R``."""
    diag = np.abs(np.diagonal(rf))
    if rf.size == 0:
        return pk
    if diag.min() < 1e-14 * max(diag.max(), 1e-300):
        return np.linalg.lstsq(rf.T, pk.T, rcond=None)[0].T
    return sla.solve_triangular(rf.T, pk.T, lower=True).T


def check_recycle_invariants(a_apply, u: np.ndarray, c: np.ndarray, *,
                             tol: float = 1e-6) -> None:
    """Debug assertions on the recycled pair (``options.check_invariants``).

    Legacy entry point predating :mod:`repro.verify`; now delegates to a
    full-level :class:`~repro.verify.InvariantChecker` so the two defining
    properties — ``C^H C = I`` and ``A U = C`` — are judged by the same
    code as the ``-hpddm_verify`` hooks.  Raises
    :class:`~repro.verify.InvariantViolation` (a
    :class:`FloatingPointError`) when either drifts beyond ``tol``.
    """
    if u is None or u.shape[1] == 0:
        return
    from ..verify import InvariantChecker
    legacy = InvariantChecker("full", context="check_invariants")
    legacy.recycle_orth_tol = tol
    legacy.recycle_map_tol = tol
    legacy.check_recycle(u, c, op_apply=a_apply, what="recycled pair")


def _strategy_w(strategy: str, gm: np.ndarray, c_k: np.ndarray,
                v_stack: np.ndarray, u_tilde: np.ndarray,
                k: int, jp: int) -> np.ndarray:
    """Right-hand side ``W`` of the generalized eigenproblem (line 33).

    Strategy ``A`` is eq. (3a): requires ``[C_k V]^H U_tilde`` — two
    matrix-matrix products fused into **one** global reduction.  Strategy
    ``B`` is eq. (3b): ``W = G_m^H [I; 0]`` — no communication at all
    (section III-C / artifact description note G).
    """
    rows = gm.shape[0]          # k + (j+1)p
    cols = k + jp
    if strategy == "B":
        # W = G_m^H [I; 0]: the adjoint of the leading square part of G_m
        return np.ascontiguousarray(gm[:cols, :].conj().T)
    # strategy A
    basis = np.concatenate([c_k, v_stack], axis=1)      # n x rows
    coeff = _gram_reduce(basis, u_tilde)                # rows x k, ONE reduction
    wrhs = np.zeros((rows, cols), dtype=gm.dtype)
    wrhs[:, :k] = coeff
    wrhs[k:, k:] = np.eye(rows - k, jp, dtype=gm.dtype)
    return gm.conj().T @ wrhs

