"""Foundation of the Krylov layer: operators, preconditioners, results.

Design notes
------------
Every solver works on ``n x p`` *blocks* of vectors so that single-RHS,
pseudo-block (fused) and true block methods share one code path.  The two
kernels that touch distributed data are:

* ``Operator.matmat`` — sparse matrix x dense block (SpMM), whose MPI
  pattern is the halo exchange of SpMV with ``p``-times-larger buffers
  (paper section V-B2);
* inner products, which are global reductions, accounted by the
  orthogonalization kernels.

Preconditioning sides are normalized here once and for all:

* ``left``  — the solver runs on ``z -> M(A z)`` and the *preconditioned*
  residual; mirrors PETSc's left preconditioning.
* ``right`` and ``flexible`` — implemented uniformly via the flexible
  machinery (store ``Z = M(V)``); for a constant preconditioner the two are
  algebraically identical, and the flexible storage is what HPDDM uses when
  ``-hpddm_variant flexible`` is requested (cf. the paper's closing note:
  FGCRO-DR "leads to less operations at a cost of additional storage").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np
import scipy.sparse as sp

from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import as_block, column_norms, identity_tag, result_dtype

__all__ = [
    "Operator",
    "as_operator",
    "Preconditioner",
    "IdentityPreconditioner",
    "FunctionPreconditioner",
    "as_preconditioner",
    "ConvergenceHistory",
    "SolveResult",
    "eps_all_below",
    "true_residual_norms",
]


class Operator:
    """Minimal linear-operator protocol: ``shape``, ``dtype``, ``matmat``."""

    def __init__(self, shape: tuple[int, int], dtype, matmat: Callable[[np.ndarray], np.ndarray],
                 *, nnz: int | None = None, tag: Any = None,
                 diag: np.ndarray | None = None):
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self._matmat = matmat
        self.nnz = nnz
        self._diag = diag
        # identity tag used for same-system detection in sequences;
        # monotonic (never reused after GC), unlike a bare id()
        self.tag = tag if tag is not None else identity_tag(matmat)

    def diagonal(self) -> np.ndarray:
        """Operator diagonal (needed by Jacobi/Chebyshev smoothers)."""
        if self._diag is None:
            raise ValueError("operator diagonal unavailable; wrap an explicit "
                             "matrix or pass diag= to Operator")
        return self._diag

    def matmat(self, x: np.ndarray) -> np.ndarray:
        x = as_block(x)
        led = ledger.current()
        if self.nnz is not None:
            kern = Kernel.SPMV if x.shape[1] == 1 else Kernel.SPMM
            led.flop(kern, 2.0 * self.nnz * x.shape[1])
        led.event("operator_apply", x.shape[1])
        y = self._matmat(x)
        return as_block(np.asarray(y))

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matmat(x)


def as_operator(a: Any) -> Operator:
    """Wrap a scipy sparse matrix, ndarray, Operator-like or callable."""
    if isinstance(a, Operator):
        return a
    if sp.issparse(a):
        # tag the caller's object, not the (possibly fresh) tocsr() result,
        # so repeated solves with the same matrix are detected as unchanged
        tag = identity_tag(a)
        a = a.tocsr()
        return Operator(a.shape, a.dtype, lambda x, _a=a: _a @ x, nnz=a.nnz,
                        tag=tag, diag=np.asarray(a.diagonal()))
    if isinstance(a, np.ndarray):
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError("dense operator must be a square 2-D array")
        return Operator(a.shape, a.dtype, lambda x, _a=a: _a @ x,
                        nnz=a.shape[0] * a.shape[1], tag=identity_tag(a),
                        diag=np.diagonal(a).copy())
    # duck-typed: objects exposing shape/dtype/matmat (e.g. DistributedCSR)
    if hasattr(a, "matmat") and hasattr(a, "shape"):
        dtype = getattr(a, "dtype", np.float64)
        nnz = getattr(a, "nnz", None)
        diag = None
        if hasattr(a, "diagonal"):
            try:
                diag = np.asarray(a.diagonal())
            except (TypeError, ValueError):
                diag = None
        # honour the object's own tag (e.g. DistributedCSR's construction
        # counter) so same-system detection survives the wrapping
        tag = getattr(a, "tag", None)
        return Operator(tuple(a.shape), dtype, a.matmat, nnz=nnz,
                        tag=tag if tag is not None else identity_tag(a),
                        diag=diag)
    if callable(a):
        raise ValueError("bare callables need an explicit Operator(shape, dtype, fn) wrapper")
    raise TypeError(f"cannot interpret {type(a).__name__} as a linear operator")


class Preconditioner:
    """Preconditioner protocol: ``apply(X) -> M^{-1} X`` on n x p blocks.

    ``is_variable`` declares a nonlinear/nondeterministic preconditioner
    (e.g. a Krylov smoother inside multigrid, section III-C of the paper);
    solvers reject ``variant != 'flexible'`` for variable preconditioners,
    exactly like HPDDM, because left/right preconditioned recurrences are
    invalid when ``M`` changes between applications.
    """

    is_variable: bool = False

    def apply(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        ledger.current().event("precond_apply", as_block(x).shape[1])
        return self.apply(x)


class IdentityPreconditioner(Preconditioner):
    """No-op preconditioner (returns its input, no copy)."""

    def apply(self, x: np.ndarray) -> np.ndarray:
        return as_block(x)

    def __call__(self, x: np.ndarray) -> np.ndarray:  # skip event logging
        return as_block(x)


class FunctionPreconditioner(Preconditioner):
    """Adapter for plain callables (the paper's PETSc-callback use case)."""

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray], *, is_variable: bool = False):
        self._fn = fn
        self.is_variable = bool(is_variable)

    def apply(self, x: np.ndarray) -> np.ndarray:
        return as_block(np.asarray(self._fn(as_block(x))))


def as_preconditioner(m: Any) -> Preconditioner:
    if m is None:
        return IdentityPreconditioner()
    if isinstance(m, Preconditioner):
        return m
    if sp.issparse(m) or isinstance(m, np.ndarray):
        op = as_operator(m)
        return FunctionPreconditioner(op.matmat)
    if callable(m):
        return FunctionPreconditioner(m)
    raise TypeError(f"cannot interpret {type(m).__name__} as a preconditioner")


@dataclass
class ConvergenceHistory:
    """Per-iteration, per-column relative residual norms."""

    rhs_norms: np.ndarray = field(default_factory=lambda: np.zeros(0))
    records: list[np.ndarray] = field(default_factory=list)

    def append(self, abs_norms: np.ndarray) -> None:
        safe = np.where(self.rhs_norms > 0, self.rhs_norms, 1.0)
        self.records.append(np.asarray(abs_norms, dtype=float) / safe)

    def matrix(self) -> np.ndarray:
        """(niter+1) x p array of relative residual norms."""
        if not self.records:
            return np.zeros((0, len(self.rhs_norms)))
        return np.vstack(self.records)

    def iterations_to_tol(self, tol: float) -> np.ndarray:
        """First iteration index at which each column dipped below tol."""
        mat = self.matrix()
        out = np.full(mat.shape[1], -1, dtype=int)
        for j in range(mat.shape[1]):
            hit = np.nonzero(mat[:, j] <= tol)[0]
            if hit.size:
                out[j] = int(hit[0])
        return out

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class SolveResult:
    """Outcome of a linear solve.

    Attributes
    ----------
    x:
        solution block, same shape as the input RHS.
    converged:
        per-column convergence flags.
    iterations:
        total inner iterations performed (block iterations for block
        methods — each advances all ``p`` columns at once).
    history:
        :class:`ConvergenceHistory` (entry 0 is the initial residual).
    method:
        resolved method name ("gmres", "bgcrodr", ...).
    restarts:
        number of restart cycles.
    breakdown:
        True when a rank-revealing QR detected (and deflated past) a block
        breakdown.
    info:
        free-form diagnostics (recycle dimension actually used, etc.).
    """

    x: np.ndarray
    converged: np.ndarray
    iterations: int
    history: ConvergenceHistory
    method: str
    restarts: int = 0
    breakdown: bool = False
    info: dict[str, Any] = field(default_factory=dict)

    @property
    def residual_norms(self) -> np.ndarray:
        mat = self.history.matrix()
        return mat[-1] if mat.size else np.zeros(0)

    def iterations_per_rhs(self, tol: float) -> np.ndarray:
        return self.history.iterations_to_tol(tol)

    def __repr__(self) -> str:  # concise, informative
        ok = bool(np.all(self.converged))
        return (f"SolveResult(method={self.method!r}, iterations={self.iterations}, "
                f"restarts={self.restarts}, converged={ok})")

    def report(self, *, width: int = 60, height: int = 12) -> str:
        """Text summary with an ASCII convergence chart (log residual)."""
        mat = self.history.matrix()
        lines = [repr(self)]
        if mat.size == 0:
            return lines[0]
        worst = mat.max(axis=1)
        worst = np.where(worst > 0, worst, np.nan)
        finite = worst[np.isfinite(worst)]
        if finite.size >= 2 and finite.max() > 0:
            logs = np.log10(np.where(np.isfinite(worst), worst, np.nan))
            lo = np.nanmin(logs)
            hi = np.nanmax(logs)
            span = max(hi - lo, 1e-12)
            idx = np.linspace(0, len(logs) - 1, min(width, len(logs))).astype(int)
            cols = logs[idx]
            grid = [[" "] * len(cols) for _ in range(height)]
            for c, v in enumerate(cols):
                if not np.isfinite(v):
                    continue
                rrow = int(round((hi - v) / span * (height - 1)))
                grid[rrow][c] = "*"
            lines.append(f"max rel. residual, 1e{hi:+.0f} (top) .. "
                         f"1e{lo:+.0f} (bottom), {len(logs) - 1} iterations")
            lines.extend("|" + "".join(row) for row in grid)
        return "\n".join(lines)


def eps_all_below(abs_norms: np.ndarray, targets: np.ndarray) -> bool:
    """The paper's ``EPS`` function (Fig. 1, lines 40-45): true residual
    column norms all below their per-column absolute targets."""
    return bool(np.all(abs_norms <= targets))


def initial_state(a: Operator, b: np.ndarray, x0: np.ndarray | None
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Common setup: promote dtypes, shape X0, compute R0 = B - A X0."""
    b = as_block(b)
    dtype = result_dtype(a.dtype, b.dtype)
    b = b.astype(dtype, copy=False)
    n, p = b.shape
    if a.shape[1] != n:
        raise ValueError(f"operator/rhs shape mismatch: {a.shape} vs {b.shape}")
    if x0 is None:
        x = np.zeros((n, p), dtype=dtype)
        r = b.copy()
    else:
        x = as_block(x0).astype(dtype, copy=True)
        if x.shape != b.shape:
            raise ValueError(f"x0 shape {x.shape} does not match rhs {b.shape}")
        r = b - a.matmat(x)
    return x, b, r


def true_residual_norms(a, x: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-column ``||b_j - A x_j||`` recomputed from scratch.

    The reference quantity of the reported-vs-true residual invariant
    (:mod:`repro.verify`): solvers report Hessenberg-tail estimates, and
    this is what those estimates are checked against.
    """
    a = as_operator(a)
    x = as_block(x)
    b = as_block(b)
    return column_norms(b - a.matmat(x.astype(result_dtype(a.dtype, b.dtype),
                                              copy=False)))


def residual_targets(b: np.ndarray, tol: float) -> np.ndarray:
    """Absolute per-column convergence targets: tol * ||b_j|| (zero-safe)."""
    nb = column_norms(b)
    return tol * np.where(nb > 0, nb, 1.0)
