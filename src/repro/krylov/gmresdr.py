"""GMRES-DR (Morgan 2002) — GMRES with deflated restarting.

The related-work baseline of section II: PETSc's Deflated GMRES keeps the
``k`` harmonic Ritz vectors of each cycle *inside* the restart space, so a
single solve converges like unrestarted GMRES on the deflated spectrum —
but, as the paper stresses, "as implemented, these methods cannot be used
to recycle Krylov subspace from one linear system solve to the next" (and
cannot handle variable preconditioning).  That is precisely GCRO-DR's
advantage; Parks et al. prove the two are equivalent for a single system,
which `tests/test_krylov_gmresdr.py` verifies numerically.

Implementation follows Morgan's augmented-Arnoldi recurrence: after a
cycle, the new basis is ``V^new_{k+1} = V_{m+1} Q`` where ``Q`` spans the
harmonic Ritz vectors *plus* the least-squares residual, and the new
reduced matrix ``H^new = Q_{k+1}^H Hbar_m Q_k`` has a full (k+1) x k
leading block — the Arnoldi recurrence continues from column k+1.
Single right-hand side, fixed (right/left/none) preconditioning.
"""

from __future__ import annotations

import numpy as np

from ..la.dense import hessenberg_harmonic_lhs, sorted_eig
from ..la.orthogonalization import SCHEMES
from ..plan.arena import TransposedBasisArena
from ..plan.pseudoblock import make_pseudo_block_orthogonalizer
from ..trace import tracer as trace
from ..util import ledger
from ..util.ledger import Kernel
from ..util.misc import as_block, column_norms
from ..util.options import Options
from ..verify import checker_for
from .base import (ConvergenceHistory, IdentityPreconditioner, SolveResult,
                   as_operator, initial_state, residual_targets)
from .deflation import select_real_subspace
from .gmres import setup_preconditioning

__all__ = ["gmresdr"]


def gmresdr(a, b, m=None, *, options: Options | None = None,
            x0: np.ndarray | None = None) -> SolveResult:
    """Solve ``A x = b`` with GMRES-DR(m, k).

    ``options.recycle`` plays the role of ``k`` (the number of harmonic
    Ritz vectors retained through every restart).
    """
    options = options or Options(krylov_method="gcrodr", recycle=10)
    k = options.recycle
    if not 0 < k < options.gmres_restart:
        raise ValueError("GMRES-DR requires 0 < k < m")
    if options.variant == "flexible":
        raise ValueError("GMRES-DR cannot handle variable preconditioning "
                         "(paper section II-C) — use FGCRO-DR")
    a = as_operator(a)
    op_apply, inner_m, left_m = setup_preconditioning(a, m, options)
    b_arr = as_block(b)
    if b_arr.shape[1] != 1:
        raise ValueError("GMRES-DR handles a single right-hand side")
    squeeze = np.asarray(b).ndim == 1

    x, b2, r = initial_state(a, b_arr, x0)
    if left_m is not None:
        b2 = np.asarray(left_m(b2))
        r = np.asarray(left_m(r)) if x0 is not None else b2.copy()
    n = b2.shape[0]
    dtype = x.dtype
    targets = residual_targets(b2, options.tol)
    identity_m = isinstance(inner_m, IdentityPreconditioner)
    led = ledger.current()
    tr = trace.current()
    chk = checker_for(options, context="gmresdr")

    history = ConvergenceHistory(rhs_norms=column_norms(b2))
    rn = column_norms(r)
    history.append(rn)
    converged = rn <= targets

    m_dim = min(options.gmres_restart, n - 1)
    total_it = 0
    cycles = 0
    # GMRES-DR has always run its Arnoldi with one full reorthogonalization
    # pass; "cgs" therefore maps to the equivalent two-pass scheme so the
    # historical behavior (and reduction counts) are preserved exactly.
    scheme = options.orthogonalization
    if scheme == "cgs":
        scheme = "imgs"

    # carried between cycles: augmented basis V (n x (k+1)) and the full
    # leading block H (k+1 x k); empty before the first cycle
    v_aug: np.ndarray | None = None
    h_lead: np.ndarray | None = None

    while not np.all(converged) and total_it < options.max_it:
        cycles += 1
        v = np.zeros((n, m_dim + 1), dtype=dtype)
        hbar = np.zeros((m_dim + 1, m_dim), dtype=dtype)
        if v_aug is None:
            beta = float(column_norms(r)[0])
            led.reduction()
            if beta == 0:
                break
            v[:, 0] = r[:, 0] / beta
            start = 0
            c_rhs = np.zeros(m_dim + 1, dtype=dtype)
            c_rhs[0] = beta
        else:
            kk = v_aug.shape[1] - 1
            v[:, : kk + 1] = v_aug
            hbar[: kk + 1, :kk] = h_lead
            start = kk
            # rhs in the new basis: V^H r (r lies in span(V_aug))
            c_rhs = np.zeros(m_dim + 1, dtype=dtype)
            c_rhs[: kk + 1] = v_aug.conj().T @ r[:, 0]
            led.reduction(nbytes=(kk + 1) * r.itemsize)

        # ---- (augmented) Arnoldi from column `start` to m ----------------
        orth = make_pseudo_block_orthogonalizer(
            scheme, plan=options.plan, n=n, p=1, dtype=dtype,
            max_cols=m_dim + 1)
        varena = None
        if options.plan == "compiled":
            # transposed-basis arena: each committed column is written once
            # and the per-step (j+1, n, 1) basis is a contiguous prefix
            # view instead of the interpreter's per-step re-transpose copy
            varena = TransposedBasisArena(m_dim + 1, n, dtype)
            varena.seed(v, start + 1)
            orth.begin(varena.prefix(start))
        else:
            orth.begin(np.ascontiguousarray(
                v[:, : start + 1].T)[:, :, np.newaxis])
        j = start
        lucky = False
        with tr.span("cycle", index=cycles - 1, kind="gmresdr"):
            while j < m_dim and total_it < options.max_it:
                with tr.span("arnoldi_step", j=j):
                    zj = v[:, j] if identity_m else np.asarray(
                        inner_m(v[:, j].reshape(-1, 1)))[:, 0].astype(dtype)
                    w = op_apply(zj.reshape(-1, 1))
                    basis = varena.prefix(j) if varena is not None else \
                        np.ascontiguousarray(
                            v[:, : j + 1].T)[:, :, np.newaxis]
                    with tr.span("ortho", scheme=scheme):
                        w2, dots, nrms = orth.step(basis, w, j)
                    w = w2[:, 0]
                    coeffs = dots[:, 0]
                    nrm = float(nrms[0])
                    hbar[: j + 1, j] = coeffs
                    hbar[j + 1, j] = nrm
                    total_it += 1
                    j += 1
                    if nrm <= 1e-300:
                        lucky = True
                        break
                    v[:, j] = w / nrm
                    if varena is not None:
                        varena.append(v[:, j])
                    orth.commit(np.ones(1, dtype=bool))
                # residual estimate via a small LS solve (redundant work)
                y_est, *_ = np.linalg.lstsq(hbar[: j + 1, :j], c_rhs[: j + 1],
                                            rcond=None)
                res_est = float(np.linalg.norm(
                    c_rhs[: j + 1] - hbar[: j + 1, :j] @ y_est))
                history.append(np.array([res_est]))
                if res_est <= targets[0]:
                    break
        jc = j
        if jc == 0:
            break

        # ---- solve the projected problem and update x ---------------------
        with tr.span("least_squares"):
            hj = hbar[: jc + 1, :jc]
            y, *_ = np.linalg.lstsq(hj, c_rhs[: jc + 1], rcond=None)
            if identity_m:
                dx = v[:, :jc] @ y
            else:
                dx = np.asarray(inner_m(v[:, :jc] @ y.reshape(-1, 1)))[:, 0]
            x[:, 0] += dx
        if chk.wants_full:
            # the augmented-Arnoldi relation A M V_jc = V_{jc+1} Hbar holds
            # across deflated restarts for a constant M (Morgan's identity);
            # Z is recomputed since only V is stored
            v_jc = v[:, : jc + 1]
            zst = v_jc[:, :jc] if identity_m else \
                np.asarray(inner_m(v[:, :jc])).astype(dtype, copy=False)
            chk.check_orthonormality(v_jc, what="augmented Arnoldi basis")
            chk.check_arnoldi(op_apply, zst, v_jc, hbar[: jc + 1, :jc],
                              what="augmented Arnoldi relation")
        if left_m is None:
            r = b2 - op_apply(x)
        else:
            r = np.asarray(left_m(b_arr.astype(dtype) - a.matmat(x)))
        rn = column_norms(r)
        led.reduction()
        converged = rn <= targets
        if not chk.is_off and not lucky:
            # after a lucky breakdown the last recorded estimate predates
            # the breakdown step, so the gap is not meaningful
            safe = np.where(history.rhs_norms > 0, history.rhs_norms, 1.0)
            chk.check_residual_gap(history.records[-1] * safe, rn,
                                   history.rhs_norms, targets,
                                   what=f"GMRES-DR restart {cycles}")
        history.records[-1] = rn / np.where(history.rhs_norms > 0,
                                            history.rhs_norms, 1.0)
        if np.all(converged):
            break

        # ---- deflated restart: harmonic Ritz + LS residual ---------------
        with tr.span("eig", kind="harmonic_ritz"):
            hmat = hessenberg_harmonic_lhs(hj, None,
                                           hbar[jc: jc + 1, jc - 1: jc], 1)
            vals, vecs = sorted_eig(hmat, jc, target=options.recycle_target)
            pk = select_real_subspace(vals, vecs, min(k, jc - 1),
                                      np.dtype(dtype))
        if pk.shape[1] == 0:
            v_aug = None
            h_lead = None
            continue
        kk = pk.shape[1]
        # append the LS residual of the projected problem (Morgan's trick)
        ls_res = c_rhs[: jc + 1] - hj @ y
        p_ext = np.zeros((jc + 1, kk + 1), dtype=dtype)
        p_ext[:jc, :kk] = pk
        p_ext[:, kk] = ls_res
        q, _ = np.linalg.qr(p_ext)
        led.flop(Kernel.QR, 4.0 * (jc + 1) * (kk + 1) ** 2)
        v_aug = v[:, : jc + 1] @ q               # n x (kk+1), orthonormal
        h_lead = q[:, : kk + 1].conj().T @ hj @ q[:jc, :kk]
        led.flop(Kernel.BLAS3, 4.0 * n * (jc + 1) * (kk + 1))
        if not SCHEMES[scheme].exact_basis:
            # single-pass / sketched schemes leave V only approximately
            # (sketch-)orthonormal; restore the carried augmented basis to
            # machine precision so c_rhs = V^H r stays exact:
            # V = Q2 R2  =>  A M Q2[:, :kk] = Q2 (R2 H R2[:kk,:kk]^-1)
            q2, r2 = np.linalg.qr(v_aug)
            led.flop(Kernel.QR, 4.0 * n * (kk + 1) ** 2)
            v_aug = q2
            h_lead = r2 @ h_lead @ np.linalg.inv(r2[:kk, :kk])

    result_x = x[:, 0] if squeeze else x
    info = {"variant": options.variant, "restart": m_dim, "k": k}
    if not chk.is_off:
        info["verify"] = chk.report()
    return SolveResult(
        x=result_x, converged=converged, iterations=total_it,
        history=history, method="gmresdr", restarts=cycles,
        info=info,
    )
