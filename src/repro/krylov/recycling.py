"""Persistent storage of recycled Krylov subspaces between solves.

The paper allocates persistent memory for the recycled vectors ``U_k`` and
``C_k`` between cycles "using a singleton class" (section III-D).  The
Python equivalent is an explicit, picklable holder object that the caller
threads through a sequence of solves (or lets :class:`repro.api.Solver`
manage); a process-wide registry keyed by user labels is provided for
PETSc-callback-style integrations where no object can be threaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["RecycledSubspace", "RecyclingStore"]


@dataclass
class RecycledSubspace:
    """The pair ``(U_k, C_k)`` with ``A U_k = C_k`` and ``C_k^H C_k = I``.

    ``op_tag`` identifies the operator the invariants currently hold for —
    when the next solve presents a different operator, GCRO-DR must
    re-orthonormalize (``[Q,R] = qr(A U_k)``, paper lines 4-6) unless the
    caller promises the operator is unchanged
    (``-hpddm_recycle_same_system``).

    ``fingerprint`` (when stamped by :class:`repro.service.SolveService`
    or a cache-backed :class:`repro.api.Solver`) additionally pins the
    operator's *values*: unlike ``op_tag``, it distinguishes an operator
    whose entries were mutated in place, so cached spaces are never
    adopted under the fast path against numerically different systems.
    """

    u: np.ndarray
    c: np.ndarray
    op_tag: Any = None
    meta: dict[str, Any] = field(default_factory=dict)
    fingerprint: Any = None

    @property
    def k(self) -> int:
        return 0 if self.u is None else self.u.shape[1]

    def matches_operator(self, tag: Any) -> bool:
        return self.op_tag is not None and self.op_tag == tag

    def matches_fingerprint(self, fingerprint: Any) -> bool:
        """Value-level match (stricter than ``matches_operator``)."""
        return self.fingerprint is not None and self.fingerprint == fingerprint

    def copy(self) -> "RecycledSubspace":
        return RecycledSubspace(self.u.copy(), self.c.copy(), self.op_tag,
                                dict(self.meta), self.fingerprint)


class RecyclingStore:
    """Registry of recycled subspaces keyed by a user label.

    Mirrors HPDDM's singleton: callback-style codes (the modified PETSc
    examples of the artifact description) address their recycled space by
    name instead of carrying an object through the call stack.
    """

    def __init__(self) -> None:
        self._spaces: dict[Any, RecycledSubspace] = {}

    def get(self, key: Any) -> RecycledSubspace | None:
        return self._spaces.get(key)

    def put(self, key: Any, space: RecycledSubspace) -> None:
        self._spaces[key] = space

    def drop(self, key: Any) -> None:
        self._spaces.pop(key, None)

    def clear(self) -> None:
        self._spaces.clear()

    def __contains__(self, key: Any) -> bool:
        return key in self._spaces

    def __len__(self) -> int:
        return len(self._spaces)


#: module-level default store (the "singleton" of the paper)
GLOBAL_STORE = RecyclingStore()
