"""Harmonic-Ritz extraction shared by the recycling methods.

Two eigenproblems appear in GCRO-DR (paper Fig. 1):

* **line 16** (first cycle): the harmonic-Ritz problem ``H z = theta z``
  with the corrected Hessenberg of eq. (2);
* **line 33** (subsequent restarts): the generalized problem
  ``T z = theta W z`` with ``T = G_m^H G_m`` and ``W`` given by either
  eq. (3a) (strategy A) or eq. (3b) (strategy B).

Both return the ``k`` eigenvectors associated with the smallest (by
default) eigenvalues in magnitude.  For *real* arithmetic the eigenvectors
of a real matrix may come in complex-conjugate pairs; the invariant
subspace is kept real by splitting such pairs into their real and
imaginary parts (standard GCRO-DR practice).
"""

from __future__ import annotations

import numpy as np

from ..la.dense import hessenberg_harmonic_lhs, sorted_eig, sorted_generalized_eig

__all__ = ["select_real_subspace", "harmonic_ritz_vectors",
           "generalized_ritz_vectors", "sketched_harmonic_ritz_vectors",
           "sketched_generalized_ritz_vectors"]


def select_real_subspace(vals: np.ndarray, vecs: np.ndarray, k: int,
                         dtype: np.dtype) -> np.ndarray:
    """Build a full-column-rank basis ``P`` (real if ``dtype`` is real).

    ``vals``/``vecs`` are the (already sorted) eigenpairs; for a real target
    dtype, complex-conjugate pairs contribute their real and imaginary
    parts.  The result has at most ``k`` columns and is orthonormalized so
    downstream QR factors stay well conditioned.
    """
    if np.issubdtype(dtype, np.complexfloating):
        p = vecs[:, :k].astype(dtype)
    else:
        cols: list[np.ndarray] = []
        j = 0
        while j < vecs.shape[1] and len(cols) < k:
            v = vecs[:, j]
            lam = vals[j]
            if abs(lam.imag) <= 1e-12 * max(abs(lam), 1.0) and \
               np.max(np.abs(v.imag)) <= 1e-12 * max(np.max(np.abs(v.real)), 1e-300):
                cols.append(v.real)
                j += 1
            else:
                cols.append(v.real)
                if len(cols) < k:
                    cols.append(v.imag)
                # conjugate partner (if adjacent) spans the same plane: skip it
                if j + 1 < vecs.shape[1] and np.isclose(vals[j + 1], np.conj(lam)):
                    j += 2
                else:
                    j += 1
        if not cols:
            return np.zeros((vecs.shape[0], 0), dtype=dtype)
        p = np.column_stack(cols).astype(dtype)
    # orthonormalize and drop numerically dependent columns
    q, r = np.linalg.qr(p)
    keep = np.abs(np.diagonal(r)) > 1e-12 * max(np.abs(np.diagonal(r)).max(), 1e-300)
    return q[:, keep]


def harmonic_ritz_vectors(hbar: np.ndarray, r_factor: np.ndarray,
                          h_last: np.ndarray, p: int, k: int, *,
                          dtype: np.dtype, target: str = "smallest") -> np.ndarray:
    """Eigenvectors for the first GCRO-DR cycle (paper line 16 / eq. 2)."""
    h = hessenberg_harmonic_lhs(hbar, r_factor, h_last, p)
    k_eff = min(k, h.shape[0])
    vals, vecs = sorted_eig(h, h.shape[0], target=target)
    return select_real_subspace(vals, vecs, k_eff, np.dtype(dtype))


def generalized_ritz_vectors(gm: np.ndarray, w: np.ndarray, k: int, *,
                             dtype: np.dtype, target: str = "smallest") -> np.ndarray:
    """Eigenvectors for the restart updates (paper line 33 / eq. 3).

    ``gm`` is the stacked matrix ``G_m``; ``T = G_m^H G_m`` is formed here
    (a small redundant gemm), ``w`` is supplied by the caller according to
    the selected recycle strategy.
    """
    t = gm.conj().T @ gm
    k_eff = min(k, t.shape[0])
    vals, vecs = sorted_generalized_eig(t, w, t.shape[0], target=target)
    return select_real_subspace(vals, vecs, k_eff, np.dtype(dtype))


def sketched_harmonic_ritz_vectors(hbar: np.ndarray, gv: np.ndarray, k: int, *,
                                   dtype: np.dtype,
                                   target: str = "smallest") -> np.ndarray:
    """Harmonic-Ritz vectors of the *sketched* least-squares problem.

    The sketched Arnoldi basis is only sketch-orthonormal, so the
    harmonic-Ritz problem keeps the basis Gram: with ``G_V = (S V)^H (S V)``
    (reconstructed locally from the engine's whitened sketch state — no
    communication) the pencil is

    .. math::  \\bar H^H G_V \\bar H \\, g = \\theta \\, \\bar H^H G_V E \\, g

    where ``E`` keeps the leading ``mp`` rows.  With ``s = n`` the sketch
    is an exact isometry, ``G_V = I`` and the pencil reduces to the
    standard harmonic problem of :func:`harmonic_ritz_vectors`.
    """
    jp = hbar.shape[1]
    a_h = hbar.conj().T @ (gv @ hbar)
    b_h = hbar.conj().T @ gv[:, :jp]
    k_eff = min(k, a_h.shape[0])
    vals, vecs = sorted_generalized_eig(a_h, b_h, a_h.shape[0], target=target)
    return select_real_subspace(vals, vecs, k_eff, np.dtype(dtype))


def sketched_generalized_ritz_vectors(gm: np.ndarray, gcv: np.ndarray,
                                      w: np.ndarray, k: int, *,
                                      dtype: np.dtype,
                                      target: str = "smallest") -> np.ndarray:
    """Restart-update Ritz vectors under the sketch inner product.

    ``gcv = (S [C_k | V])^H (S [C_k | V])`` is the sketch Gram of the
    augmented basis (local small-matrix work); the left-hand side becomes
    ``T_s = G_m^H gcv G_m`` — the sketch-norm analogue of ``G_m^H G_m``.
    Reduces to :func:`generalized_ritz_vectors` when the sketch is exact
    and the basis truly orthonormal.

    Not used by the sketched-recycling solver path: with the whitened
    carrying, ``C_k`` and ``V`` are already sketch-orthonormal, and the
    gcv weighting squares the embedding distortion — measured to
    destabilize the subspace selection for ``k`` approaching ``m/2``
    (``benchmarks/results/ablation_sketched_recycle.txt``).  Kept as the
    reference formulation.
    """
    t = gm.conj().T @ (gcv @ gm)
    k_eff = min(k, t.shape[0])
    vals, vecs = sorted_generalized_eig(t, w, t.shape[0], target=target)
    return select_real_subspace(vals, vecs, k_eff, np.dtype(dtype))
