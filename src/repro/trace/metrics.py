"""Counters, gauges and histograms for the observability layer.

A :class:`MetricsRegistry` is a deliberately small, dependency-free subset
of the Prometheus client model: named counters (monotone), gauges (set to
the latest value) and fixed-bucket histograms, each with optional label
pairs, rendered to a flat text snapshot (one ``name{labels} value`` line
per sample, sorted) so CI artifacts and tests can diff it directly.

Nothing here reads the clock: histogram samples are iteration counts,
reduction counts, batch occupancies and modeled seconds — all deterministic
— so two identical runs produce byte-identical snapshots.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NULL_METRICS"]


def _labelkey(labels: dict[str, Any]) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labelstr(key: tuple) -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"


def _fmt(v: float) -> str:
    f = float(v)
    return str(int(f)) if f == int(f) else repr(f)


class Counter:
    """Monotone counter, one value per label set."""

    def __init__(self, name: str, help_: str = ""):
        self.name = name
        self.help = help_
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _labelkey(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_labelkey(labels), 0)

    def samples(self) -> Iterable[tuple[str, float]]:
        for key in sorted(self._values):
            yield f"{self.name}{_labelstr(key)}", self._values[key]


class Gauge:
    """Last-write-wins value, one per label set."""

    def __init__(self, name: str, help_: str = ""):
        self.name = name
        self.help = help_
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_labelkey(labels)] = float(value)

    def value(self, **labels: Any) -> float:
        return self._values.get(_labelkey(labels), 0.0)

    def samples(self) -> Iterable[tuple[str, float]]:
        for key in sorted(self._values):
            yield f"{self.name}{_labelstr(key)}", self._values[key]


class Histogram:
    """Fixed-bucket histogram with count/sum, one series per label set."""

    DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

    def __init__(self, name: str, help_: str = "",
                 buckets: tuple[float, ...] | None = None):
        self.name = name
        self.help = help_
        self.buckets = tuple(sorted(buckets or self.DEFAULT_BUCKETS))
        self._counts: dict[tuple, list[int]] = {}
        self._sums: dict[tuple, float] = {}
        self._totals: dict[tuple, int] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _labelkey(labels)
        counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
        # first bucket with value <= bound; past-the-end = overflow slot
        counts[bisect_left(self.buckets, value)] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: Any) -> int:
        return self._totals.get(_labelkey(labels), 0)

    def sum(self, **labels: Any) -> float:
        return self._sums.get(_labelkey(labels), 0.0)

    def samples(self) -> Iterable[tuple[str, float]]:
        for key in sorted(self._counts):
            cumulative = 0
            for i, b in enumerate(self.buckets):
                cumulative += self._counts[key][i]
                yield (f"{self.name}_bucket{_labelstr(key + (('le', _fmt(b)),))}",
                       cumulative)
            yield (f"{self.name}_bucket{_labelstr(key + (('le', '+Inf'),))}",
                   self._totals[key])
            yield f"{self.name}_sum{_labelstr(key)}", self._sums[key]
            yield f"{self.name}_count{_labelstr(key)}", self._totals[key]


class MetricsRegistry:
    """Create-on-first-use registry with a flat-text snapshot."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, help_: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help_, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(metric).__name__}")
        return metric

    def counter(self, name: str, help_: str = "") -> Counter:
        return self._get(Counter, name, help_)

    def gauge(self, name: str, help_: str = "") -> Gauge:
        return self._get(Gauge, name, help_)

    def histogram(self, name: str, help_: str = "",
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        return self._get(Histogram, name, help_, buckets=buckets)

    def snapshot(self) -> str:
        """One sorted ``name{labels} value`` line per sample."""
        lines = []
        for name in sorted(self._metrics):
            for sample, value in self._metrics[name].samples():
                lines.append(f"{sample} {_fmt(value)}")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, float]:
        return {sample: value for name in sorted(self._metrics)
                for sample, value in self._metrics[name].samples()}


class _NullMetric:
    """Absorbs every mutation; returned by the null registry."""

    __slots__ = ()

    def inc(self, amount: float = 1, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass


_NULL_METRIC = _NullMetric()


class _NullMetrics:
    """Registry stand-in carried by the null tracer."""

    def counter(self, name: str, help_: str = "") -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help_: str = "") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help_: str = "",
                  buckets: tuple[float, ...] | None = None) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> str:
        return ""


NULL_METRICS = _NullMetrics()
