"""Structured span tracer: *where* inside a solve the ledger costs occur.

The :class:`~repro.util.ledger.CostLedger` enforces the paper's counting
arguments as *totals* (a GCRO-DR cycle costs ``2(m-k)`` reductions where a
GMRES cycle costs ``m``, section III-D) — but a total cannot say whether a
regression crept into orthogonalization, recycle maintenance or the SpMM.
The tracer opens nested spans around solver phases
(``solve > cycle > {arnoldi_step, ortho, recycle_update, eig,
least_squares}``, plus ``service.batch``, ``setup.*`` and — at the
``"full"`` level — individual simulated-MPI collectives) and closes each
one with the :meth:`CostLedger.diff` of its window, so every reduction,
byte and flop is attributed to exactly one span's *exclusive* cost:

    sum over the span tree of ``span.exclusive().counts()``
        == root window ``counts()``           (bit-for-bit, both exec modes)

The attribution is pure observation: spans snapshot and diff the ambient
ledger but never charge it, so installing a tracer cannot change
``counts()`` — the invariant ``tests/test_trace.py`` locks down.

Ambient-install pattern (mirrors :mod:`repro.util.ledger`): a process-wide
null tracer swallows spans when none is installed, so the default fast
path pays one singleton attribute lookup per instrumentation site.  Wall
clock never enters: span "times" for the Chrome export are *modeled* from
the ledger counts by :mod:`repro.perfmodel` (see :mod:`repro.trace.export`),
which keeps traces reproducible bit-for-bit across runs and machines.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from ..util import ledger
from ..util.ledger import CostLedger
from .metrics import MetricsRegistry, NULL_METRICS

__all__ = ["Span", "Tracer", "NullTracer", "TRACE_LEVELS", "current",
           "install", "tracer_for"]

#: accepted values of ``Options.trace`` / ``-hpddm_trace``
TRACE_LEVELS = ("off", "summary", "full")


class Span:
    """One closed (or still-open) region of a solve.

    ``cost`` is the :meth:`CostLedger.diff` of the span's window — the
    events of the span *including* its children.  :meth:`exclusive`
    subtracts the children's windows, which is the quantity that sums to
    the root window over the whole tree (integer adds below 2^53, so the
    conservation is exact in floating point).
    """

    __slots__ = ("name", "index", "attrs", "parent", "children", "cost",
                 "_before", "_ledger")

    def __init__(self, name: str, index: int, attrs: dict[str, Any],
                 parent: "Span | None"):
        self.name = name
        self.index = index
        self.attrs = attrs
        self.parent = parent
        self.children: list[Span] = []
        self.cost: CostLedger | None = None
        self._ledger: CostLedger | None = None
        self._before: CostLedger | None = None

    # -- tree queries ------------------------------------------------------
    def exclusive(self) -> CostLedger:
        """Window cost minus the children's windows (this span's own events).

        Children recorded against a *different* ledger (a nested
        ``ledger.install``, e.g. a service batch) are skipped: their events
        never reached this span's ledger directly, only via an explicit
        ``merge`` that the window already counts once.
        """
        if self.cost is None:
            raise RuntimeError(f"span {self.name!r} is still open")
        out = self.cost.snapshot()
        for child in self.children:
            if child.cost is None or child._ledger is not self._ledger:
                continue
            out.reductions -= child.cost.reductions
            out.reduction_bytes -= child.cost.reduction_bytes
            out.p2p_messages -= child.cost.p2p_messages
            out.p2p_bytes -= child.cost.p2p_bytes
            out.flops.subtract(child.cost.flops)
            out.calls.subtract(child.cost.calls)
        out.timers = {}
        return out

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (including self) with the given name."""
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> dict[str, Any]:
        """Recursive plain-data form (counts only — no timers, no objects)."""
        cost = self.cost if self.cost is not None else CostLedger()
        return {
            "name": self.name,
            "index": self.index,
            "attrs": dict(self.attrs),
            "reductions": cost.reductions,
            "reduction_bytes": cost.reduction_bytes,
            "p2p_messages": cost.p2p_messages,
            "p2p_bytes": cost.p2p_bytes,
            "flops": {k: float(v) for k, v in sorted(cost.flops.items())},
            "calls": {k: int(v) for k, v in sorted(cost.calls.items())},
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        nred = self.cost.reductions if self.cost is not None else "?"
        return (f"Span({self.name!r}, index={self.index}, "
                f"children={len(self.children)}, reductions={nred})")


class _OpenSpan:
    """Reusable-shape context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        span._ledger = ledger.current()
        span._before = span._ledger.snapshot()
        self._tracer._stack.append(span)
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.cost = span._ledger.diff(span._before)
        span._before = None
        stack = self._tracer._stack
        # tolerate exceptions unwinding through several open spans
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        return False


class _NullSpanCM:
    """Singleton no-op span: the cost of tracing when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpanCM()


class Tracer:
    """Collects a forest of cost-attributed spans for one or more solves.

    Parameters
    ----------
    level:
        ``"summary"`` records solver-phase spans; ``"full"`` additionally
        opens per-primitive spans in the simulated-MPI substrate
        (:meth:`detail_span` sites).  ``"off"`` is not a valid tracer
        level — *absence* of a tracer is how tracing is turned off.
    """

    enabled = True

    def __init__(self, level: str = "summary"):
        if level not in TRACE_LEVELS or level == "off":
            raise ValueError(
                f"invalid tracer level {level!r}; expected 'summary' or 'full'")
        self.level = level
        self.roots: list[Span] = []
        self.metrics = MetricsRegistry()
        self._stack: list[Span] = []
        self._count = 0

    @property
    def detail(self) -> bool:
        return self.level == "full"

    def span(self, name: str, **attrs: Any) -> _OpenSpan:
        """Open a nested span; use as a context manager."""
        parent = self._stack[-1] if self._stack else None
        span = Span(name, self._count, attrs, parent)
        self._count += 1
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        return _OpenSpan(self, span)

    def detail_span(self, name: str, **attrs: Any):
        """A span that only materializes at the ``"full"`` level.

        Hot distributed primitives (collectives, SpMM, fused Grams) call
        this so the ``"summary"`` level stays cheap.
        """
        if self.level != "full":
            return _NULL_SPAN
        return self.span(name, **attrs)

    # -- reporting ---------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Aggregate per-name exclusive costs over every recorded root."""
        by_name: dict[str, dict[str, float]] = {}
        for root in self.roots:
            for span in root.walk():
                if span.cost is None:
                    continue
                excl = span.exclusive()
                row = by_name.setdefault(
                    span.name, {"count": 0, "reductions": 0,
                                "reduction_bytes": 0, "flops": 0.0})
                row["count"] += 1
                row["reductions"] += excl.reductions
                row["reduction_bytes"] += excl.reduction_bytes
                row["flops"] += excl.total_flops()
        return {"level": self.level, "spans": self._count,
                "by_name": {k: by_name[k] for k in sorted(by_name)}}


class NullTracer:
    """Sink installed by default: every instrumentation site is a no-op."""

    enabled = False
    detail = False
    level = "off"
    metrics = NULL_METRICS

    def span(self, name: str, **attrs: Any) -> _NullSpanCM:
        return _NULL_SPAN

    def detail_span(self, name: str, **attrs: Any) -> _NullSpanCM:
        return _NULL_SPAN


_NULL_TRACER = NullTracer()
_STACK: list[Tracer] = []


def current() -> "Tracer | NullTracer":
    """The innermost installed tracer (or the process-wide null sink)."""
    return _STACK[-1] if _STACK else _NULL_TRACER


@contextmanager
def install(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install ``tracer`` (or a fresh summary-level one) as ambient.

    >>> from repro.trace import Tracer, install
    >>> with install(Tracer("summary")) as tr:
    ...     with tr.span("solve"):
    ...         pass
    >>> [s.name for s in tr.roots]
    ['solve']
    """
    tr = tracer if tracer is not None else Tracer()
    _STACK.append(tr)
    try:
        yield tr
    finally:
        _STACK.pop()


def tracer_for(options: Any) -> "Tracer | NullTracer":
    """Resolve the tracer a solve should report to.

    An ambient tracer (installed by the caller — a test, the trace gate, a
    service) always wins; otherwise ``options.trace`` selects a fresh one.
    Returns the null tracer when tracing is off both ways, so callers can
    unconditionally open spans against the result.
    """
    ambient = current()
    if ambient.enabled:
        return ambient
    level = getattr(options, "trace", "off")
    if level == "off":
        return _NULL_TRACER
    return Tracer(level)
