"""Trace-based reduction-shape gate (the CI ``trace-gate`` stage).

The paper's central scalability claim is a *shape* statement about
communication: GMRES(m) pays one global reduction per Arnoldi step (``m``
per cycle with a one-reduction scheme), while GCRO-DR(m, k) on the
same-system fast path pays ``2(m-k)`` per cycle — fewer, non-variable, and
independent of the recycle update machinery.  The gate re-derives those
numbers **from exported trace spans** rather than from the solvers'
bookkeeping, so a regression in either the solvers, the orthogonalization
engines, or the tracer's cost attribution trips it.

Checks (all from span trees produced by real solves):

* GMRES + ``sketched``: every full cycle has exactly ``m`` ``arnoldi_step``
  spans and their reductions sum to exactly ``m`` (one per step).
* GCRO-DR + ``cgs2_1r`` + ``same_system``: every full cycle has ``m - k``
  steps summing to exactly ``2 (m - k)`` reductions, the per-cycle count
  never varies across cycles, and no ``recycle_update`` span appears.
* ``cgs2_1r`` low-synchronization bound: **every** ``arnoldi_step`` span
  carries at most 2 reductions, recycling included.
* Conservation: the per-span exclusive costs sum bit-for-bit to the root
  span's ledger window (checked via :func:`counts_signature`, so flops,
  p2p and event counts are included — not just reductions).

Everything runs under both execution modes (``fused`` / ``per_rank``); the
ledger counts are bit-identical by construction and the gate would catch a
divergence.  No service is involved: conservation is a *per-ledger*
statement and the service's batch ledger would mix two ledgers in one tree.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from ..util import ledger
from ..util.ledger import CostLedger
from ..util.options import Options
from .export import counts_signature
from .tracer import Span, Tracer, install

__all__ = ["GateError", "check_conservation", "check_gcrodr_shape",
           "check_gmres_shape", "check_step_reduction_bound", "run_gate"]


class GateError(AssertionError):
    """A trace-gate assertion failed (subclass of AssertionError so the
    gate composes with pytest and plain ``assert``-style CI runners)."""


def _steps(cycle: Span) -> list[Span]:
    return cycle.find("arnoldi_step")


def check_gmres_shape(root: Span, m: int) -> dict[str, Any]:
    """Every full GMRES cycle: exactly ``m`` steps, ``m`` reductions.

    The last cycle of a solve may be short (convergence mid-cycle); it must
    still pay exactly one reduction per step it ran.
    """
    cycles = root.find("cycle")
    if not cycles:
        raise GateError("gmres trace has no cycle spans")
    full = 0
    for cyc in cycles:
        steps = _steps(cyc)
        reds = sum(s.cost.reductions for s in steps)
        if reds != len(steps):
            raise GateError(
                f"gmres cycle {cyc.attrs.get('index')}: {len(steps)} steps "
                f"but {reds} reductions (expected one per step)")
        if len(steps) == m:
            full += 1
            if reds != m:
                raise GateError(
                    f"gmres full cycle {cyc.attrs.get('index')}: expected "
                    f"exactly {m} reductions, got {reds}")
    if full == 0:
        raise GateError(f"gmres trace has no full m={m} cycle to check")
    return {"cycles": len(cycles), "full_cycles": full,
            "reductions_per_full_cycle": m}


def check_gcrodr_shape(root: Span, m: int, k: int) -> dict[str, Any]:
    """Same-system GCRO-DR cycles: ``m - k`` steps, ``2 (m - k)``
    reductions, a per-cycle count that never varies, and zero
    ``recycle_update`` spans."""
    updates = root.find("recycle_update")
    if updates:
        raise GateError(
            f"same-system GCRO-DR trace contains {len(updates)} "
            f"recycle_update span(s); the fast path must not update")
    cycles = [c for c in root.find("cycle")
              if c.attrs.get("kind") == "gcrodr"]
    if not cycles:
        raise GateError("gcrodr trace has no recycled cycle spans")
    per_full_cycle: set[int] = set()
    full = 0
    for cyc in cycles:
        steps = _steps(cyc)
        reds = sum(s.cost.reductions for s in steps)
        if reds != 2 * len(steps):
            raise GateError(
                f"gcrodr cycle {cyc.attrs.get('index')}: {len(steps)} steps "
                f"but {reds} reductions (expected 2 per step with cgs2_1r)")
        if len(steps) == m - k:
            full += 1
            per_full_cycle.add(reds)
    if full == 0:
        raise GateError(
            f"gcrodr trace has no full (m-k)={m - k}-step cycle to check")
    if per_full_cycle != {2 * (m - k)}:
        raise GateError(
            f"gcrodr full-cycle reduction count is variable or wrong: "
            f"{sorted(per_full_cycle)} (expected exactly {{{2 * (m - k)}}})")
    return {"cycles": len(cycles), "full_cycles": full,
            "reductions_per_full_cycle": 2 * (m - k)}


def check_step_reduction_bound(root: Span, bound: int = 2) -> dict[str, Any]:
    """``cgs2_1r`` promise: no Arnoldi step pays more than ``bound``
    reductions, anywhere in the tree."""
    steps = root.find("arnoldi_step")
    if not steps:
        raise GateError("trace has no arnoldi_step spans")
    worst = max(s.cost.reductions for s in steps)
    if worst > bound:
        raise GateError(
            f"an arnoldi_step span pays {worst} reductions "
            f"(low-synchronization bound is {bound})")
    return {"steps": len(steps), "max_reductions_per_step": worst}


def check_conservation(root: Span) -> dict[str, Any]:
    """Per-span exclusive costs must sum back to the root window.

    Every discrete counter (reductions, reduction/p2p bytes, messages,
    per-name call counts) must match **bit-for-bit**.  Flop totals are
    float sums re-associated by the tree walk, so they are compared to
    within a few ULP instead (1e-12 relative) — exact equality there would
    assert a property float addition does not have.

    Valid only for trees recorded against a single ledger (no service
    batches): spans on a different ledger are skipped by ``exclusive`` and
    would make the sum undercount.
    """
    total = CostLedger()
    for span in root.walk():
        ex = span.exclusive()
        if ex is not None:
            total.merge(ex)
    lhs, rhs = counts_signature(total), counts_signature(root.cost)
    # counts() layout: (reductions, reduction_bytes, p2p_messages,
    # p2p_bytes, flops-dict, calls-dict) with flops at index 4
    lhs_flops, rhs_flops = lhs[4], rhs[4]
    if lhs[:4] + lhs[5:] != rhs[:4] + rhs[5:]:
        raise GateError(
            f"span cost attribution is not conservative:\n"
            f"  sum of exclusives: {lhs}\n  root window:       {rhs}")
    if set(lhs_flops) != set(rhs_flops) or any(
            abs(lhs_flops[kern] - rhs_flops[kern])
            > 1e-12 * max(abs(rhs_flops[kern]), 1.0)
            for kern in rhs_flops):
        raise GateError(
            f"span flop attribution drifted beyond reassociation error:\n"
            f"  sum of exclusives: {lhs_flops}\n"
            f"  root window:       {rhs_flops}")
    return {"entries": len(lhs)}


# ----------------------------------------------------------------------
def _gate_problem(n: int = 400) -> tuple[sp.csr_matrix, np.ndarray]:
    """Deterministic, well-conditioned sparse test system."""
    rs = np.random.RandomState(1234)
    a = sp.random(n, n, density=0.02, random_state=rs, format="csr")
    a = a + sp.eye(n, format="csr") * 4.0
    rng = np.random.default_rng(1234)
    b = rng.standard_normal((n, 3))
    return sp.csr_matrix(a), b


def run_gate(exec_modes: tuple[str, ...] = ("fused", "per_rank"),
             m: int = 10, k: int = 4) -> dict[str, Any]:
    """Run the full reduction-shape gate; returns a report dict.

    Raises :class:`GateError` on the first violated invariant.
    """
    from .. import api   # late import: api imports this package

    a, b_cols = _gate_problem()
    report: dict[str, Any] = {"m": m, "k": k}
    for mode in exec_modes:
        mode_report: dict[str, Any] = {}

        # --- GMRES(m) with a one-reduction scheme: m reductions/cycle ---
        opts = Options(krylov_method="gmres", gmres_restart=m,
                       orthogonalization="sketched", tol=1e-12, max_it=60,
                       exec_mode=mode, trace="summary")
        tr = Tracer(level="summary")
        led = CostLedger()
        with install(tr), ledger.install(led):
            res = api.solve(a, b_cols[:, 0], options=opts)
        ledger.current().merge(led)   # gate cost shows up in outer ledgers
        root = tr.roots[-1]
        mode_report["gmres"] = check_gmres_shape(root, m)
        mode_report["gmres"]["iterations"] = res.iterations
        check_conservation(root)

        # --- GCRO-DR(m, k) same-system fast path: 2(m-k)/cycle ----------
        opts = Options(krylov_method="gcrodr", gmres_restart=m, recycle=k,
                       orthogonalization="cgs2_1r", tol=1e-12, max_it=90,
                       exec_mode=mode, trace="summary")
        tr = Tracer(level="summary")
        led = CostLedger()
        with install(tr), ledger.install(led):
            first = api.solve(a, b_cols[:, 1], options=opts)
            res = api.solve(a, b_cols[:, 2], options=opts,
                            recycle=first.info["recycle"], same_system=True)
        ledger.current().merge(led)
        seed_root, root = tr.roots[-2], tr.roots[-1]
        mode_report["gcrodr"] = check_gcrodr_shape(root, m, k)
        mode_report["gcrodr"]["iterations"] = res.iterations
        mode_report["cgs2_1r_bound"] = check_step_reduction_bound(root)
        check_step_reduction_bound(seed_root)
        check_conservation(seed_root)
        check_conservation(root)

        report[mode] = mode_report

    # both modes must tell the same story
    shapes = {mode: (report[mode]["gmres"]["reductions_per_full_cycle"],
                     report[mode]["gcrodr"]["reductions_per_full_cycle"])
              for mode in exec_modes}
    if len(set(shapes.values())) > 1:
        raise GateError(f"exec modes disagree on reduction shapes: {shapes}")
    report["reductions_per_cycle"] = {"gmres": m, "gcrodr": 2 * (m - k)}
    return report
