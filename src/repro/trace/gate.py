"""Trace-based reduction-shape gate (the CI ``trace-gate`` stage).

The paper's central scalability claim is a *shape* statement about
communication: GMRES(m) pays one global reduction per Arnoldi step (``m``
per cycle with a one-reduction scheme), while GCRO-DR(m, k) on the
same-system fast path pays ``2(m-k)`` per cycle — fewer, non-variable, and
independent of the recycle update machinery.  The gate re-derives those
numbers **from exported trace spans** rather than from the solvers'
bookkeeping, so a regression in either the solvers, the orthogonalization
engines, or the tracer's cost attribution trips it.

Checks (all from span trees produced by real solves):

* GMRES + ``sketched``: every full cycle has exactly ``m`` ``arnoldi_step``
  spans and their reductions sum to exactly ``m`` (one per step).
* GCRO-DR + ``cgs2_1r`` + ``same_system``: every full cycle has ``m - k``
  steps summing to exactly ``2 (m - k)`` reductions, the per-cycle count
  never varies across cycles, and no ``recycle_update`` span appears.
* ``cgs2_1r`` low-synchronization bound: **every** ``arnoldi_step`` span
  carries at most 2 reductions, recycling included.
* GCRO-DR + ``sketched`` + ``recycle_space=sketched`` (different-system
  updates enabled): every recycled cycle pays exactly ``steps + 1``
  reductions (one fused prologue + one per step), harvest
  ``recycle_update`` spans pay **0** reductions (the candidate sketch is
  local algebra, the whitening is communication-free), update spans pay
  exactly the ``k``-float column-norm reduction plus — under strategy A
  only — the one fused Gram (so 2 for A, 1 for B; never the full-space
  re-orthonormalization), every ``least_squares`` span pays 0, and the
  per-cycle overhead is checked at two restart lengths so a hidden
  ``O(m)`` term cannot masquerade as a constant.
* Conservation: the per-span exclusive costs sum bit-for-bit to the root
  span's ledger window (checked via :func:`counts_signature`, so flops,
  p2p and event counts are included — not just reductions).

Everything runs under both execution modes (``fused`` / ``per_rank``); the
ledger counts are bit-identical by construction and the gate would catch a
divergence.  No service is involved: conservation is a *per-ledger*
statement and the service's batch ledger would mix two ledgers in one tree.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from ..util import ledger
from ..util.ledger import CostLedger
from ..util.options import Options
from .export import counts_signature
from .tracer import Span, Tracer, install

__all__ = ["GateError", "check_conservation", "check_gcrodr_shape",
           "check_gmres_shape", "check_sequence_shape",
           "check_sketched_recycle_shape", "check_shifted_shape",
           "check_step_reduction_bound", "run_gate"]


class GateError(AssertionError):
    """A trace-gate assertion failed (subclass of AssertionError so the
    gate composes with pytest and plain ``assert``-style CI runners)."""


def _steps(cycle: Span) -> list[Span]:
    return cycle.find("arnoldi_step")


def check_gmres_shape(root: Span, m: int) -> dict[str, Any]:
    """Every full GMRES cycle: exactly ``m`` steps, ``m`` reductions.

    The last cycle of a solve may be short (convergence mid-cycle); it must
    still pay exactly one reduction per step it ran.
    """
    cycles = root.find("cycle")
    if not cycles:
        raise GateError("gmres trace has no cycle spans")
    full = 0
    for cyc in cycles:
        steps = _steps(cyc)
        reds = sum(s.cost.reductions for s in steps)
        if reds != len(steps):
            raise GateError(
                f"gmres cycle {cyc.attrs.get('index')}: {len(steps)} steps "
                f"but {reds} reductions (expected one per step)")
        if len(steps) == m:
            full += 1
            if reds != m:
                raise GateError(
                    f"gmres full cycle {cyc.attrs.get('index')}: expected "
                    f"exactly {m} reductions, got {reds}")
    if full == 0:
        raise GateError(f"gmres trace has no full m={m} cycle to check")
    return {"cycles": len(cycles), "full_cycles": full,
            "reductions_per_full_cycle": m}


def check_gcrodr_shape(root: Span, m: int, k: int) -> dict[str, Any]:
    """Same-system GCRO-DR cycles: ``m - k`` steps, ``2 (m - k)``
    reductions, a per-cycle count that never varies, and zero
    ``recycle_update`` spans."""
    updates = root.find("recycle_update")
    if updates:
        raise GateError(
            f"same-system GCRO-DR trace contains {len(updates)} "
            f"recycle_update span(s); the fast path must not update")
    cycles = [c for c in root.find("cycle")
              if c.attrs.get("kind") == "gcrodr"]
    if not cycles:
        raise GateError("gcrodr trace has no recycled cycle spans")
    per_full_cycle: set[int] = set()
    full = 0
    for cyc in cycles:
        steps = _steps(cyc)
        reds = sum(s.cost.reductions for s in steps)
        if reds != 2 * len(steps):
            raise GateError(
                f"gcrodr cycle {cyc.attrs.get('index')}: {len(steps)} steps "
                f"but {reds} reductions (expected 2 per step with cgs2_1r)")
        if len(steps) == m - k:
            full += 1
            per_full_cycle.add(reds)
    if full == 0:
        raise GateError(
            f"gcrodr trace has no full (m-k)={m - k}-step cycle to check")
    if per_full_cycle != {2 * (m - k)}:
        raise GateError(
            f"gcrodr full-cycle reduction count is variable or wrong: "
            f"{sorted(per_full_cycle)} (expected exactly {{{2 * (m - k)}}})")
    return {"cycles": len(cycles), "full_cycles": full,
            "reductions_per_full_cycle": 2 * (m - k)}


def check_step_reduction_bound(root: Span, bound: int = 2) -> dict[str, Any]:
    """``cgs2_1r`` promise: no Arnoldi step pays more than ``bound``
    reductions, anywhere in the tree."""
    steps = root.find("arnoldi_step")
    if not steps:
        raise GateError("trace has no arnoldi_step spans")
    worst = max(s.cost.reductions for s in steps)
    if worst > bound:
        raise GateError(
            f"an arnoldi_step span pays {worst} reductions "
            f"(low-synchronization bound is {bound})")
    return {"steps": len(steps), "max_reductions_per_step": worst}


def check_sketched_recycle_shape(root: Span, m: int, k: int
                                 ) -> dict[str, Any]:
    """Sketched-recycling shape: O(1) recycling overhead per cycle.

    For a GCRO-DR solve with ``orthogonalization=sketched`` and
    ``recycle_space=sketched`` running *real* updates (not the same-system
    fast path):

    * every ``cycle`` span pays exactly ``steps + 1`` reductions — the
      single fused prologue (seed projection stacked with ``S v1``) plus
      one per Arnoldi step;
    * harvest ``recycle_update`` spans pay **0** reductions — the
      candidate sketch ``S C_new = (S V) qf`` is local algebra on the
      engine's whitened state and the whitening itself is
      communication-free; update spans pay exactly the ``k``-float
      ``||U e_i||`` column-norm reduction plus, under strategy A only,
      the one fused cross-Gram (2 for A, 1 for B) — never the full-space
      re-orthonormalization;
    * every ``least_squares`` span pays **0** reductions (line 28's
      ``C^H R_{j-1}`` term is local algebra on the prologue coefficients);
    * no drift-triggered ``recycle_repair`` fires on this well-conditioned
      problem (the one deferred adoption-boundary repair per solve is
      allowed — it is the lazy-repair contract, not drift).

    None of the expected counts depends on ``m``; ``run_gate`` calls this
    at two restart lengths and cross-checks the overhead.
    """
    cycles = [c for c in root.find("cycle")
              if c.attrs.get("kind") in ("gcrodr", "harvest")]
    if not cycles:
        raise GateError("sketched-recycle trace has no cycle spans")
    for cyc in cycles:
        steps = _steps(cyc)
        step_reds = sum(s.cost.reductions for s in steps)
        if step_reds != len(steps):
            raise GateError(
                f"sketched cycle {cyc.attrs.get('index')}: {len(steps)} "
                f"steps but {step_reds} step reductions (expected one per "
                f"step)")
        total = cyc.cost.reductions
        if total != len(steps) + 1:
            raise GateError(
                f"sketched cycle {cyc.attrs.get('index')} "
                f"({cyc.attrs.get('kind')}): {total} reductions for "
                f"{len(steps)} steps (expected steps + 1: one fused "
                f"prologue, one per step)")
    from ..krylov.sketch_recycle import SketchedRecycler
    updates = root.find("recycle_update")
    if not updates:
        raise GateError("sketched-recycle trace has no recycle_update "
                        "spans; updates must run (not the fast path)")
    worst_update = 0
    refreshes = 0
    for upd in updates:
        if upd.attrs.get("kind") == "harvest":
            expected, why = 0, ("local-algebra candidate sketch + "
                               "communication-free whitening")
        else:
            strategy = upd.attrs.get("strategy", "A")
            expected = 2 if strategy == "A" else 1
            why = ("the k-float column norms"
                   + (" + the one fused strategy-A Gram"
                      if strategy == "A" else ""))
        # the bounded-cadence re-sketch refresh adds at most one s x k
        # reduction on every refresh_every-th whitening — still O(1)
        if upd.cost.reductions not in (expected, expected + 1):
            raise GateError(
                f"sketched recycle_update span "
                f"({upd.attrs.get('kind') or 'update'}) pays "
                f"{upd.cost.reductions} reductions (expected {expected}: "
                f"{why}; +1 only for the periodic re-sketch refresh; the "
                f"full-space re-orthonormalization must not appear)")
        refreshes += upd.cost.reductions - expected
        worst_update = max(worst_update, upd.cost.reductions)
    cap = len(updates) // SketchedRecycler.refresh_every + 1
    if refreshes > cap:
        raise GateError(
            f"{refreshes} re-sketch refreshes across {len(updates)} "
            f"recycle_update spans (cadence allows at most {cap}: one "
            f"per {SketchedRecycler.refresh_every} whitenings)")
    for ls in root.find("least_squares"):
        if ls.cost.reductions != 0:
            raise GateError(
                f"sketched least_squares span pays {ls.cost.reductions} "
                f"reductions (expected 0: the C^H r term is local)")
    drift_repairs = [sp_ for sp_ in root.find("recycle_repair")
                     if sp_.attrs.get("kind") != "adoption_boundary"]
    if drift_repairs:
        raise GateError(
            f"{len(drift_repairs)} drift-triggered recycle_repair span(s) "
            f"on the well-conditioned gate problem; lazy repair is not "
            f"deferring")
    return {"cycles": len(cycles), "updates": len(updates),
            "reductions_per_update": worst_update,
            "overhead_per_cycle": 1}


def check_shifted_shape(roots: dict[int, Span], ratio_cap: float = 1.25
                        ) -> dict[str, Any]:
    """Shifted-family shape: reductions per cycle independent of #shifts.

    ``roots`` maps the number of shifts ``k`` to the root span of a family
    solve of the *same* system at that width (full-rank right-hand-side
    blocks, so every width runs the identical cycle structure).  Derived
    from spans alone:

    * every ``least_squares`` span pays **0** reductions in shared-basis
      mode and exactly **1** in recycled mode (the one fused family Gram
      ``[C|U]^H [U|V]``) — the per-shift Hessenberg/augmented solves are
      local dense work, so the count cannot grow with ``k``;
    * for every cycle length that occurs at several widths, the
      per-cycle reduction count is **identical** across all of them — the
      shape statement "one family pays the reductions of one solve";
    * the paper-shaped headline: total reductions at the widest ``k`` are
      at most ``ratio_cap`` (default 1.25) times the total at the
      narrowest — re-deriving the tests' ledger assertion from the trace.
    """
    if len(roots) < 2:
        raise GateError("check_shifted_shape needs solves at >= 2 widths")
    per_k: dict[int, dict[str, Any]] = {}
    for k, root in sorted(roots.items()):
        cycles = [c for c in root.find("cycle")
                  if c.attrs.get("kind") == "shifted"]
        if not cycles:
            raise GateError(f"shifted trace (k={k}) has no family cycle "
                            f"spans")
        for ls in root.find("least_squares"):
            expected = 1 if ls.attrs.get("recycled") else 0
            if ls.cost.reductions != expected:
                raise GateError(
                    f"shifted least_squares span at k={k} pays "
                    f"{ls.cost.reductions} reductions (expected {expected}"
                    f": per-shift solves are local dense work"
                    + (", plus the one fused family Gram"
                       if expected else "") + ")")
        by_steps: dict[int, int] = {}
        for cyc in cycles:
            steps = len(_steps(cyc))
            reds = cyc.cost.reductions
            if by_steps.setdefault(steps, reds) != reds:
                raise GateError(
                    f"shifted trace (k={k}): two {steps}-step cycles pay "
                    f"different reduction counts "
                    f"({by_steps[steps]} vs {reds})")
        per_k[k] = {"by_steps": by_steps,
                    "total": root.cost.reductions,
                    "cycles": len(cycles)}
    ks = sorted(per_k)
    base = per_k[ks[0]]["by_steps"]
    for k in ks[1:]:
        for steps, reds in per_k[k]["by_steps"].items():
            if steps in base and base[steps] != reds:
                raise GateError(
                    f"reductions per {steps}-step family cycle depend on "
                    f"the number of shifts: k={ks[0]} pays {base[steps]}, "
                    f"k={k} pays {reds}")
    lo, hi = per_k[ks[0]]["total"], per_k[ks[-1]]["total"]
    if hi > ratio_cap * lo:
        raise GateError(
            f"a k={ks[-1]} shift family pays {hi} total reductions vs "
            f"{lo} for k={ks[0]} (> {ratio_cap}x: the shared basis is "
            f"not amortizing)")
    return {"widths": ks,
            "reductions_per_cycle": {
                k: dict(sorted(per_k[k]["by_steps"].items()))
                for k in ks},
            "total_reductions": {k: per_k[k]["total"] for k in ks},
            "headline_ratio": hi / lo if lo else float("inf")}


def check_sequence_shape(root: Span) -> dict[str, Any]:
    """Transient-sequence shape: reuse must be visible in the spans.

    ``root`` holds a :class:`repro.service.SequenceDriver` run
    (``sequence.run`` > ``sequence.wave`` > ``service.batch`` +
    ``sequence.step`` leaves).  Derived from spans alone:

    * every ``sequence.step`` leaf maps (by its ``batch`` attribute) to a
      ``service.batch`` span in the same tree;
    * a step with **unchanged fingerprint** (``fp_changed=False``) hits
      the same-system fast path: its batch contains **zero** ``setup.*``
      spans (the setup cache served the preconditioner), **zero**
      ``recycle_update`` spans (no recycle-harvest reductions), and every
      recycled cycle in it carries ``same_system=True``;
    * an **adoption-boundary** step (``adopted=True``: the epoch changed
      and the recycle space was carried over via
      ``SetupCache.adopt_from``) must be *repaired, never trusted*: its
      batch must run at least one ``recycle_update`` or
      ``recycle_repair`` span, and none of its recycled cycles may claim
      ``same_system=True``.
    """
    runs = root.find("sequence.run")
    if not runs:
        raise GateError("trace has no sequence.run span")
    steps = root.find("sequence.step")
    if not steps:
        raise GateError("sequence trace has no sequence.step leaves")
    batches = {b.attrs.get("batch"): b for b in root.find("service.batch")}
    fast, adoptions = 0, 0
    for leaf in steps:
        tag = (f"step {leaf.attrs.get('step')} of tenant "
               f"{leaf.attrs.get('tenant')!r}")
        batch = batches.get(leaf.attrs.get("batch"))
        if batch is None:
            raise GateError(
                f"sequence.step leaf ({tag}) references batch "
                f"{leaf.attrs.get('batch')!r} with no service.batch span")
        setups = [s for s in batch.walk() if s.name.startswith("setup.")]
        updates = batch.find("recycle_update")
        repairs = batch.find("recycle_repair")
        recycled_cycles = [c for c in batch.find("cycle")
                           if c.attrs.get("kind") == "gcrodr"]
        if not leaf.attrs.get("fp_changed"):
            fast += 1
            if setups:
                raise GateError(
                    f"unchanged-fingerprint {tag} paid "
                    f"{len(setups)} setup span(s) "
                    f"({sorted({s.name for s in setups})}); the setup "
                    f"cache must serve repeat operators")
            if updates:
                harvest_reds = sum(u.cost.reductions for u in updates)
                raise GateError(
                    f"unchanged-fingerprint {tag} ran {len(updates)} "
                    f"recycle_update span(s) ({harvest_reds} harvest "
                    f"reductions); the same-system fast path must not "
                    f"update")
            for cyc in recycled_cycles:
                if not cyc.attrs.get("same_system"):
                    raise GateError(
                        f"unchanged-fingerprint {tag} ran a recycled "
                        f"cycle with same_system="
                        f"{cyc.attrs.get('same_system')!r}")
        elif leaf.attrs.get("adopted"):
            adoptions += 1
            if not updates and not repairs:
                raise GateError(
                    f"adoption-boundary {tag} ran neither recycle_update "
                    f"nor recycle_repair; adopted spaces must be "
                    f"repaired, never trusted")
            for cyc in recycled_cycles:
                if cyc.attrs.get("same_system"):
                    raise GateError(
                        f"adoption-boundary {tag} claimed same_system="
                        f"True against a changed operator")
    return {"steps": len(steps), "fast_path_steps": fast,
            "adoptions": adoptions, "batches": len(batches)}


def check_conservation(root: Span) -> dict[str, Any]:
    """Per-span exclusive costs must sum back to the root window.

    Every discrete counter (reductions, reduction/p2p bytes, messages,
    per-name call counts) must match **bit-for-bit**.  Flop totals are
    float sums re-associated by the tree walk, so they are compared to
    within a few ULP instead (1e-12 relative) — exact equality there would
    assert a property float addition does not have.

    Valid only for trees recorded against a single ledger (no service
    batches): spans on a different ledger are skipped by ``exclusive`` and
    would make the sum undercount.
    """
    total = CostLedger()
    for span in root.walk():
        ex = span.exclusive()
        if ex is not None:
            total.merge(ex)
    lhs, rhs = counts_signature(total), counts_signature(root.cost)
    # counts() layout: (reductions, reduction_bytes, p2p_messages,
    # p2p_bytes, flops-dict, calls-dict) with flops at index 4
    lhs_flops, rhs_flops = lhs[4], rhs[4]
    if lhs[:4] + lhs[5:] != rhs[:4] + rhs[5:]:
        raise GateError(
            f"span cost attribution is not conservative:\n"
            f"  sum of exclusives: {lhs}\n  root window:       {rhs}")
    if set(lhs_flops) != set(rhs_flops) or any(
            abs(lhs_flops[kern] - rhs_flops[kern])
            > 1e-12 * max(abs(rhs_flops[kern]), 1.0)
            for kern in rhs_flops):
        raise GateError(
            f"span flop attribution drifted beyond reassociation error:\n"
            f"  sum of exclusives: {lhs_flops}\n"
            f"  root window:       {rhs_flops}")
    return {"entries": len(lhs)}


# ----------------------------------------------------------------------
def _gate_problem(n: int = 400) -> tuple[sp.csr_matrix, np.ndarray]:
    """Deterministic, well-conditioned sparse test system."""
    rs = np.random.RandomState(1234)
    a = sp.random(n, n, density=0.02, random_state=rs, format="csr")
    a = a + sp.eye(n, format="csr") * 4.0
    rng = np.random.default_rng(1234)
    b = rng.standard_normal((n, 3))
    return sp.csr_matrix(a), b


def run_gate(exec_modes: tuple[str, ...] = ("fused", "per_rank"),
             m: int = 10, k: int = 4) -> dict[str, Any]:
    """Run the full reduction-shape gate; returns a report dict.

    Raises :class:`GateError` on the first violated invariant.
    """
    from .. import api   # late import: api imports this package

    a, b_cols = _gate_problem()
    report: dict[str, Any] = {"m": m, "k": k}
    for mode in exec_modes:
        mode_report: dict[str, Any] = {}

        # --- GMRES(m) with a one-reduction scheme: m reductions/cycle ---
        opts = Options(krylov_method="gmres", gmres_restart=m,
                       orthogonalization="sketched", tol=1e-12, max_it=60,
                       exec_mode=mode, trace="summary")
        tr = Tracer(level="summary")
        led = CostLedger()
        with install(tr), ledger.install(led):
            res = api.solve(a, b_cols[:, 0], options=opts)
        ledger.current().merge(led)   # gate cost shows up in outer ledgers
        root = tr.roots[-1]
        mode_report["gmres"] = check_gmres_shape(root, m)
        mode_report["gmres"]["iterations"] = res.iterations
        check_conservation(root)

        # --- GCRO-DR(m, k) same-system fast path: 2(m-k)/cycle ----------
        opts = Options(krylov_method="gcrodr", gmres_restart=m, recycle=k,
                       orthogonalization="cgs2_1r", tol=1e-12, max_it=90,
                       exec_mode=mode, trace="summary")
        tr = Tracer(level="summary")
        led = CostLedger()
        with install(tr), ledger.install(led):
            first = api.solve(a, b_cols[:, 1], options=opts)
            res = api.solve(a, b_cols[:, 2], options=opts,
                            recycle=first.info["recycle"], same_system=True)
        ledger.current().merge(led)
        seed_root, root = tr.roots[-2], tr.roots[-1]
        mode_report["gcrodr"] = check_gcrodr_shape(root, m, k)
        mode_report["gcrodr"]["iterations"] = res.iterations
        mode_report["cgs2_1r_bound"] = check_step_reduction_bound(root)
        check_step_reduction_bound(seed_root)
        check_conservation(seed_root)
        check_conservation(root)

        # --- GCRO-DR(m, k) + sketched recycling: O(1) overhead/cycle ----
        # Updates run for real (same_system=False); two restart lengths so
        # the per-cycle overhead is demonstrably independent of m.
        sk_report: dict[str, Any] = {}
        for m_s in (m, 2 * m):
            opts = Options(krylov_method="gcrodr", gmres_restart=m_s,
                           recycle=k, orthogonalization="sketched",
                           recycle_space="sketched", tol=1e-10, max_it=150,
                           exec_mode=mode, trace="summary")
            tr = Tracer(level="summary")
            led = CostLedger()
            with install(tr), ledger.install(led):
                first = api.solve(a, b_cols[:, 1], options=opts)
                res = api.solve(a, b_cols[:, 2], options=opts,
                                recycle=first.info["recycle"],
                                same_system=False)
            ledger.current().merge(led)
            seed_root, root = tr.roots[-2], tr.roots[-1]
            rep = check_sketched_recycle_shape(root, m_s, k)
            rep["iterations"] = res.iterations
            check_step_reduction_bound(root, bound=1)
            check_conservation(seed_root)
            check_conservation(root)
            sk_report[f"m={m_s}"] = rep
        if len({rep["overhead_per_cycle"]
                for rep in sk_report.values()}) != 1:
            raise GateError(
                f"sketched-recycle per-cycle overhead varies with m: "
                f"{sk_report}")
        mode_report["sketched_recycle"] = sk_report

        # --- shifted families: reductions/cycle independent of #shifts --
        # Full-rank RHS blocks so every width runs the same cycle shape;
        # shared-basis and unprojected-recycled engines both checked.
        rng = np.random.default_rng(77)
        b_fam = rng.standard_normal((a.shape[0], 8))
        shifts = [0.05 * (i + 1) for i in range(8)]
        sh_report: dict[str, Any] = {}
        for label, extra in (("bgmres", {}), ("bgcrodr", {"recycle": k})):
            roots: dict[int, Span] = {}
            for kf in (1, 4, 8):
                opts = Options(krylov_method=label, gmres_restart=2 * m,
                               orthogonalization="cgs2_1r", tol=1e-10,
                               max_it=120, exec_mode=mode, trace="summary",
                               **extra)
                tr = Tracer(level="summary")
                led = CostLedger()
                with install(tr), ledger.install(led):
                    api.solve(a, b_fam[:, :kf], options=opts,
                              shifts=shifts[:kf])
                ledger.current().merge(led)
                roots[kf] = tr.roots[-1]
                check_conservation(roots[kf])
                check_step_reduction_bound(roots[kf])
            sh_report[label] = check_shifted_shape(roots)
        mode_report["shifted"] = sh_report

        # --- transient sequences: reuse must be visible in the spans ----
        # Two heat tenants through the sync service with an LU-cached
        # preconditioner: unchanged-fp steps must show zero setup and
        # zero recycle-harvest work; the epoch boundary must adopt+repair.
        # (No conservation check here — service batches run on private
        # ledgers, which check_conservation explicitly excludes.)
        from ..problems.transient import HeatSequence
        from ..service.sequence import SequenceDriver
        from ..service.service import SolveService
        seq_opts = Options(krylov_method="gcrodr", gmres_restart=m,
                           recycle=k, orthogonalization="cgs2_1r",
                           tol=1e-10, max_it=2000,
                           recycle_same_system=False,
                           service_flush="explicit",
                           exec_mode=mode, trace="summary")
        tr = Tracer(level="summary")
        led = CostLedger()
        with install(tr), ledger.install(led):
            # Schwarz (not exact LU) keeps the per-step solves non-trivial
            # so harvested recycle spaces are non-empty and adoption has
            # something to repair; setup.schwarz spans still mark setup.
            svc = SolveService(options=seq_opts, preconditioner="schwarz",
                               precond_opts={"nparts": 2})
            driver = SequenceDriver(svc)
            for tenant in ("t0", "t1"):
                driver.add(HeatSequence(nx=7, n_steps=6, dt0=1e-3,
                                        epoch_length=3, growth=1.5),
                           options=seq_opts, tenant=tenant)
            driver.run()
        ledger.current().merge(led)
        mode_report["sequence"] = check_sequence_shape(tr.roots[-1])
        if mode_report["sequence"]["adoptions"] == 0:
            raise GateError("sequence gate scenario produced no "
                            "adoption-boundary steps")

        report[mode] = mode_report

    # both modes must tell the same story
    shapes = {mode: (report[mode]["gmres"]["reductions_per_full_cycle"],
                     report[mode]["gcrodr"]["reductions_per_full_cycle"])
              for mode in exec_modes}
    if len(set(shapes.values())) > 1:
        raise GateError(f"exec modes disagree on reduction shapes: {shapes}")
    report["reductions_per_cycle"] = {"gmres": m, "gcrodr": 2 * (m - k),
                                      "gcrodr_sketched_recycle": "steps + 1"}
    return report
