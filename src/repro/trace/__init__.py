"""Observability layer: span tracer, metrics registry, trace exports.

See ``docs/OBSERVABILITY.md`` for the user-facing tour.  The package is
dependency-free beyond numpy (already required) and never reads the wall
clock — every exported "time" is modeled from ledger counts.
"""

from .export import (chrome_trace, chrome_trace_json, counts_signature,
                     modeled_span_seconds)
from .gate import GateError, run_gate
from .metrics import NULL_METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .tracer import (TRACE_LEVELS, NullTracer, Span, Tracer, current, install,
                     tracer_for)

__all__ = [
    "Counter",
    "Gauge",
    "GateError",
    "run_gate",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullTracer",
    "Span",
    "TRACE_LEVELS",
    "Tracer",
    "chrome_trace",
    "chrome_trace_json",
    "counts_signature",
    "current",
    "install",
    "modeled_span_seconds",
    "tracer_for",
]
