"""Trace exports: Chrome ``trace_event`` JSON and count signatures.

The Chrome export (load it at ``chrome://tracing`` or https://ui.perfetto.dev)
renders the span tree as nested complete events (``"ph": "X"``).  All
timestamps are **modeled**: each span's duration is the
:func:`repro.perfmodel.modeled_time` of its exclusive ledger window on a
target machine, children are laid out sequentially inside their parent,
and the parent closes after its own exclusive tail.  No wall clock is ever
read, so the export is bit-for-bit reproducible — a property the
determinism CI stage asserts.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from ..perfmodel.estimate import modeled_time
from ..perfmodel.machine import CURIE, MachineModel
from ..util.ledger import CostLedger
from .tracer import Span, Tracer

__all__ = ["chrome_trace", "chrome_trace_json", "counts_signature",
           "modeled_span_seconds"]


def counts_signature(led: CostLedger) -> tuple:
    """:meth:`CostLedger.counts` with exact zero entries dropped.

    ``Counter.subtract`` (used by ``diff`` and the spans' exclusive-cost
    arithmetic) leaves explicit zero-valued keys behind; two ledgers that
    charged the same events must compare equal regardless, so conservation
    checks are stated over this normalized form.
    """
    red, red_b, p2p_m, p2p_b, flops, calls = led.counts()
    return (red, red_b, p2p_m, p2p_b,
            {k: v for k, v in sorted(flops.items()) if v != 0},
            {k: v for k, v in sorted(calls.items()) if v != 0})


def modeled_span_seconds(span: Span, *, nranks: int = 64,
                         machine: MachineModel = CURIE,
                         block_width: int = 1) -> float:
    """Modeled seconds of the span's *window* (exclusive + children).

    Computed recursively as ``modeled(exclusive) + sum(children)`` rather
    than ``modeled(window)`` directly: the reduction term of the machine
    model uses the *average* payload per reduction, which is not additive
    across phases — the recursive form guarantees children always fit
    inside their parent in the rendered trace.
    """
    total = modeled_time(span.exclusive(), nranks, machine=machine,
                         block_width=block_width).total
    for child in span.children:
        total += modeled_span_seconds(child, nranks=nranks, machine=machine,
                                      block_width=block_width)
    return total


def _emit(span: Span, t0_us: float, events: list[dict[str, Any]], *,
          nranks: int, machine: MachineModel, block_width: int) -> float:
    dur = modeled_span_seconds(span, nranks=nranks, machine=machine,
                               block_width=block_width) * 1e6
    excl = span.exclusive()
    events.append({
        "name": span.name,
        "ph": "X",
        "ts": round(t0_us, 6),
        "dur": round(dur, 6),
        "pid": 1,
        "tid": 1,
        "args": {
            **span.attrs,
            "reductions": excl.reductions,
            "reduction_bytes": excl.reduction_bytes,
            "p2p_messages": excl.p2p_messages,
            "flops": excl.total_flops(),
        },
    })
    t_child = t0_us
    for child in span.children:
        t_child = _emit(child, t_child, events, nranks=nranks,
                        machine=machine, block_width=block_width)
    return t0_us + dur


def chrome_trace(roots: "Iterable[Span] | Tracer", *, nranks: int = 64,
                 machine: MachineModel = CURIE,
                 block_width: int = 1) -> dict[str, Any]:
    """Chrome ``trace_event`` document for a span forest (or a tracer).

    >>> from repro.trace import Tracer
    >>> tr = Tracer()
    >>> with tr.span("solve"):
    ...     with tr.span("cycle"):
    ...         pass
    >>> doc = chrome_trace(tr)
    >>> [e["name"] for e in doc["traceEvents"]]
    ['solve', 'cycle']
    """
    if isinstance(roots, Tracer):
        roots = roots.roots
    events: list[dict[str, Any]] = []
    t0 = 0.0
    for root in roots:
        t0 = _emit(root, t0, events, nranks=nranks, machine=machine,
                   block_width=block_width)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.trace (modeled time, no wall clock)",
            "machine": machine.name,
            "nranks": nranks,
        },
    }


def chrome_trace_json(roots: "Iterable[Span] | Tracer", *, nranks: int = 64,
                      machine: MachineModel = CURIE,
                      block_width: int = 1) -> str:
    """The :func:`chrome_trace` document serialized with sorted keys."""
    return json.dumps(chrome_trace(roots, nranks=nranks, machine=machine,
                                   block_width=block_width),
                      indent=2, sort_keys=True)
