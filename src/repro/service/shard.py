"""Consistent-hash sharding of setup caches over operator fingerprints.

A multi-tenant front end cannot serve every operator out of one LRU: a
burst of distinct operators from one tenant would evict every other
tenant's factorizations.  Sharding partitions the fingerprint space so
each shard owns an independent :class:`~repro.service.cache.SetupCache`
with its own capacity and its own eviction clock — eviction pressure in
one shard never touches another.

Placement uses a consistent-hash ring (virtual replicas per shard, BLAKE2b
point hashes) over the *value* fingerprint of the operator, so

* the mapping is a pure function of ``(fingerprint, n_shards, replicas)``
  — byte-deterministic across runs and processes (no ``PYTHONHASHSEED``
  dependence), and
* resizing the ring from ``n`` to ``n - 1`` shards only remaps the keys
  that lived on the removed shard; every other operator keeps its cached
  setup (the classic consistent-hashing stability argument).

:class:`ShardedSetupCache` composes the router with per-shard caches
behind the full ``SetupCache`` API, so :class:`repro.SolveService` and the
async scheduler can treat either transparently.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Any, Callable

from .cache import SetupCache
from .fingerprint import Fingerprint

__all__ = ["ConsistentHashRouter", "ShardedSetupCache"]


def _point(label: str) -> int:
    """Deterministic position of ``label`` on the hash ring."""
    return int.from_bytes(
        hashlib.blake2b(label.encode(), digest_size=8).digest(), "big")


class ConsistentHashRouter:
    """Consistent-hash ring mapping fingerprints to shard indices.

    Parameters
    ----------
    n_shards:
        number of shards (>= 1).
    replicas:
        virtual nodes per shard.  More replicas smooth the load split at
        the cost of a larger (still tiny) ring; 64 keeps the max/mean
        shard load under ~1.3 for Zipf-weighted traffic.
    """

    def __init__(self, n_shards: int, replicas: int = 64):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.n_shards = int(n_shards)
        self.replicas = int(replicas)
        points = []
        for shard in range(self.n_shards):
            for replica in range(self.replicas):
                points.append((_point(f"shard{shard}:{replica}"), shard))
        points.sort()
        self._ring = [p for p, _ in points]
        self._shards = [s for _, s in points]

    def route(self, fp: Fingerprint) -> int:
        """Shard index owning ``fp`` (successor clockwise on the ring)."""
        key = _point(f"{fp.structure}:{fp.values}")
        i = bisect.bisect_right(self._ring, key)
        if i == len(self._ring):
            i = 0
        return self._shards[i]

    def __repr__(self) -> str:
        return (f"ConsistentHashRouter(n_shards={self.n_shards}, "
                f"replicas={self.replicas})")


class ShardedSetupCache:
    """``SetupCache``-compatible facade over consistently-hashed shards.

    ``max_entries`` is the capacity of *each* shard, matching the
    ``service_cache_entries`` semantics documented in ``docs/OPTIONS.md``:
    total capacity is ``n_shards * max_entries``.  Hit/miss counters
    remain per-(fingerprint, kind) inside each shard; ``stats()``
    aggregates them and adds a per-shard breakdown under ``"shards"``.
    """

    def __init__(self, n_shards: int, max_entries: int = 32,
                 replicas: int = 64):
        self.router = ConsistentHashRouter(n_shards, replicas)
        self.max_entries = int(max_entries)
        self.shards = [SetupCache(max_entries) for _ in range(n_shards)]

    @property
    def n_shards(self) -> int:
        return self.router.n_shards

    def shard_of(self, fp: Fingerprint) -> int:
        """Index of the shard owning ``fp``."""
        return self.router.route(fp)

    # -- SetupCache API, routed ------------------------------------------
    def get(self, fp: Fingerprint, kind: str) -> Any | None:
        return self.shards[self.router.route(fp)].get(fp, kind)

    def put(self, fp: Fingerprint, kind: str, artifact: Any) -> None:
        self.shards[self.router.route(fp)].put(fp, kind, artifact)

    def get_or_build(self, fp: Fingerprint, kind: str,
                     builder: Callable[[], Any]) -> tuple[Any, bool]:
        return self.shards[self.router.route(fp)].get_or_build(
            fp, kind, builder)

    def adopt_from(self, fp_new: Fingerprint, fp_prev: Fingerprint,
                   kinds: list[str] | None = None) -> list[str]:
        """Carry recycle artifacts across shards (see ``SetupCache``).

        ``fp_prev`` and ``fp_new`` may hash to different shards; the
        artifacts are read from the previous operator's shard and written
        into the new operator's shard, preserving the foreign fingerprint
        stamp so the adoption-boundary repair still fires.
        """
        if fp_new == fp_prev:
            return []
        src = self.shards[self.router.route(fp_prev)]
        dst = self.shards[self.router.route(fp_new)]
        if src is dst:
            return src.adopt_from(fp_new, fp_prev, kinds)
        prev = src._entries.get(fp_prev)
        if not prev:
            return []
        if kinds is None:
            kinds = [k for k in prev
                     if k.startswith("recycle:")
                     or k.startswith("family_recycle:")]
        cur = dst._entries.get(fp_new, {})
        adopted: list[str] = []
        for kind in kinds:
            if kind not in prev or kind in cur:
                continue
            artifact = prev[kind]
            copier = getattr(artifact, "copy", None)
            if callable(copier):
                artifact = copier()
            dst.put(fp_new, kind, artifact)
            adopted.append(kind)
        return adopted

    def invalidate(self, fp: Fingerprint | None = None,
                   kind: str | None = None) -> None:
        if fp is None:
            for shard in self.shards:
                shard.invalidate()
            return
        self.shards[self.router.route(fp)].invalidate(fp, kind)

    def fingerprints(self) -> list[Fingerprint]:
        """Cached operators, shard-major, LRU-first within each shard."""
        out: list[Fingerprint] = []
        for shard in self.shards:
            out.extend(shard.fingerprints())
        return out

    def key_stats(self, fp: Fingerprint) -> dict[str, dict[str, int]]:
        return self.shards[self.router.route(fp)].key_stats(fp)

    @property
    def evictions(self) -> int:
        return sum(shard.evictions for shard in self.shards)

    @property
    def hits(self) -> Counter:
        total: Counter = Counter()
        for shard in self.shards:
            total.update(shard.hits)
        return total

    @property
    def misses(self) -> Counter:
        total: Counter = Counter()
        for shard in self.shards:
            total.update(shard.misses)
        return total

    def stats(self) -> dict[str, Any]:
        per_shard = [shard.stats() for shard in self.shards]
        agg_hits: Counter = Counter()
        agg_misses: Counter = Counter()
        for s in per_shard:
            agg_hits.update(s["hits"])
            agg_misses.update(s["misses"])
        return {
            "entries": sum(s["entries"] for s in per_shard),
            "max_entries": self.max_entries,
            "n_shards": self.n_shards,
            "hits": dict(agg_hits),
            "misses": dict(agg_misses),
            "total_hits": sum(s["total_hits"] for s in per_shard),
            "total_misses": sum(s["total_misses"] for s in per_shard),
            "evictions": sum(s["evictions"] for s in per_shard),
            "shards": per_shard,
        }

    def __contains__(self, fp: Fingerprint) -> bool:
        return fp in self.shards[self.router.route(fp)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __repr__(self) -> str:
        return (f"ShardedSetupCache(n_shards={self.n_shards}, "
                f"entries={len(self)}, "
                f"max_entries_per_shard={self.max_entries})")
