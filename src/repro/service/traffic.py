"""Deterministic traffic generator and replay harness for the service.

The ROADMAP north-star is a solve service under heavy multi-tenant
traffic; this module makes that workload *reproducible*.  A frozen
:class:`TrafficConfig` seeds every random choice, :func:`generate`
expands it into an explicit arrival schedule (Zipf-skewed operator
popularity, exponential open-loop inter-arrival gaps, optional
simultaneous-arrival bursts, tenant/priority tags), and
:func:`run_traffic` replays that schedule through either service front
end:

* ``mode="async"`` drives :class:`~repro.service.scheduler.AsyncSolveService`
  — sharded, deadline-scheduled, pipelined — in simulated time;
* ``mode="sync"`` replays the same schedule through the blocking
  :class:`~repro.service.service.SolveService` oracle on a single serial
  lane whose timeline is reconstructed from the batch ledgers
  (dispatch at ``max(lane free, last member's arrival)``).

Nothing reads the wall clock: all times are modeled seconds from
:func:`repro.perfmodel.modeled_time`, so two runs of one config are
byte-identical — reports, metric snapshots, and digests.  That is the
contract the golden-replay tests and the ``traffic`` CI stage pin.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any

import numpy as np
import scipy.sparse as sp

from ..trace import Tracer, install as install_tracer
from ..util.options import Options
from .scheduler import DEFAULT_NRANKS, AsyncSolveService
from .service import SolveService

__all__ = ["TrafficConfig", "Arrival", "generate", "build_operators",
           "base_operator", "run_traffic"]


@dataclass(frozen=True)
class TrafficConfig:
    """Seeded description of one traffic scenario (all times modeled)."""

    seed: int = 20260705
    n_requests: int = 1000
    n_operators: int = 8
    grid: int = 8                 #: operators are ``grid^2``-dim Laplacians
    zipf_s: float = 1.1           #: operator-popularity skew (Zipf exponent)
    arrival: str = "open"         #: ``"open"`` | ``"closed"``
    rate: float = 50_000.0        #: open loop: mean arrivals per second
    users: int = 32               #: closed loop: synchronized users per wave
    think_time: float = 0.0       #: closed loop: pause between waves
    burst_every: int = 0          #: every k-th arrival starts a burst (0=off)
    burst_size: int = 8           #: simultaneous arrivals per burst
    n_tenants: int = 4
    priorities: int = 2           #: priority levels drawn uniformly
    deadline: float = 0.0         #: relative deadline per request (0 = none)
    method: str = "gmres"
    pmax: int = 16
    shards: int = 4
    queue_depth: int = 0          #: per-shard admission bound (0 = unbounded)
    cache_entries: int = 32
    family_fraction: float = 0.0  #: fraction of arrivals sent as families
    family_shifts: int = 4        #: shifts per family request


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: all scheduling inputs, no arrays."""

    time: float
    op: int          #: operator index into :func:`build_operators`
    seed: int        #: RHS seed (deterministic per request)
    tenant: str
    priority: int
    deadline: float  #: relative; 0 = none
    shifts: tuple = ()  #: non-empty = family request on the base Laplacian


def generate(cfg: TrafficConfig) -> list[Arrival]:
    """Expand a config into its deterministic arrival schedule.

    Operator popularity is Zipf(``zipf_s``): operator ``i`` is drawn with
    probability proportional to ``1 / (i + 1)^s``, so a handful of hot
    operators dominates — the regime where setup caching pays.  With
    ``burst_every > 0``, every ``burst_every``-th arrival collapses the
    following ``burst_size`` arrivals onto its timestamp (a tenant burst).
    Closed-loop schedules carry ``time=0.0``; the replay driver paces
    them by completions instead.

    With ``family_fraction > 0`` that fraction of arrivals becomes
    *family* requests: the operator population is shifted 2-D Laplacians
    ``lap2 + 0.05 (i+1) I``, so instead of solving one member as a
    standalone operator (its own fingerprint, its own setup) the arrival
    asks for ``family_shifts`` consecutive members of the sweep at once —
    ``shifts = (0.05 (op+1), 0.05 (op+2), ...)`` on the *base* Laplacian
    — exercising the shared-basis family path.  Family arrivals model
    sweep consumers reading a *shared* per-operator dataset (their RHS
    seed is the operator index, not the arrival index), so concurrent
    sweeps of the same operator coalesce to one family dispatch.  The
    family flags come from an independent seeded stream, so the base
    schedule (operators, tenants, times) of a config is unchanged by
    the knob.
    """
    if cfg.arrival not in ("open", "closed"):
        raise ValueError(f"unknown arrival process {cfg.arrival!r}")
    if not 0.0 <= cfg.family_fraction <= 1.0:
        raise ValueError(
            f"family_fraction must be in [0, 1], got {cfg.family_fraction}")
    rng = np.random.default_rng([cfg.seed, 0xA11])
    n = cfg.n_requests
    weights = 1.0 / np.power(np.arange(1, cfg.n_operators + 1), cfg.zipf_s)
    probs = weights / weights.sum()
    ops = rng.choice(cfg.n_operators, size=n, p=probs)
    tenants = rng.integers(0, cfg.n_tenants, size=n)
    priorities = rng.integers(0, cfg.priorities, size=n)
    if cfg.arrival == "open":
        times = np.cumsum(rng.exponential(1.0 / cfg.rate, size=n))
        if cfg.burst_every > 0:
            for j in range(cfg.burst_every, n, cfg.burst_every):
                times[j:j + cfg.burst_size] = times[j]
    else:
        times = np.zeros(n)
    if cfg.family_fraction > 0.0:
        fam_rng = np.random.default_rng([cfg.seed, 0xFA31])
        is_family = fam_rng.random(n) < cfg.family_fraction
        width = min(cfg.family_shifts, cfg.n_operators)
    else:
        is_family = np.zeros(n, dtype=bool)
        width = 0
    return [Arrival(time=float(times[i]), op=int(ops[i]),
                    seed=int(ops[i]) if is_family[i] else i,
                    tenant=f"tenant{int(tenants[i])}",
                    priority=int(priorities[i]), deadline=cfg.deadline,
                    shifts=tuple(
                        0.05 * ((int(ops[i]) + d) % cfg.n_operators + 1)
                        for d in range(width)) if is_family[i] else ())
            for i in range(n)]


def schedule_digest(arrivals: list[Arrival]) -> str:
    """Stable digest of a schedule (the golden-replay identity)."""
    payload = repr([dataclasses.astuple(a) for a in arrivals]).encode()
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def build_operators(cfg: TrafficConfig) -> list[sp.csr_matrix]:
    """The config's operator population: shifted 2D Laplacians.

    Distinct diagonal shifts give every operator its own value
    fingerprint while keeping conditioning mild enough that every
    request converges (the equal-correctness leg of the bench gate).
    """
    lap2 = base_operator(cfg)
    n = lap2.shape[0]
    return [(lap2 + (0.05 * (i + 1)) * sp.eye(n)).tocsr()
            for i in range(cfg.n_operators)]


def base_operator(cfg: TrafficConfig) -> sp.csr_matrix:
    """The unshifted 2-D Laplacian every population member is a shift of.

    Family requests submit this base with ``shifts=[...]`` — the member
    operators of :func:`build_operators` are exactly
    ``base + 0.05 (i+1) I``, so a family answers several population
    members from one shared basis.
    """
    g = cfg.grid
    lap1 = sp.diags([-np.ones(g - 1), 2.0 * np.ones(g), -np.ones(g - 1)],
                    [-1, 0, 1])
    eye = sp.eye(g)
    return (sp.kron(lap1, eye) + sp.kron(eye, lap1)).tocsr()


def _rhs(cfg: TrafficConfig, arrival: Arrival) -> np.ndarray:
    return np.random.default_rng(
        [cfg.seed, arrival.seed]).standard_normal(cfg.grid * cfg.grid)


def _options(cfg: TrafficConfig, mode: str) -> Options:
    return Options(krylov_method=cfg.method, service_mode=mode,
                   service_pmax=cfg.pmax, service_shards=cfg.shards,
                   service_queue_depth=cfg.queue_depth,
                   service_deadline=cfg.deadline,
                   service_cache_entries=cfg.cache_entries)


def _percentile(sorted_vals: list[float], q: float) -> float:
    """Nearest-rank percentile — index arithmetic only, reproducible."""
    if not sorted_vals:
        return 0.0
    i = min(len(sorted_vals) - 1, int(math.ceil(q * len(sorted_vals))) - 1)
    return sorted_vals[max(i, 0)]


def _latency_summary(latencies: list[float]) -> dict[str, float]:
    vals = sorted(latencies)
    return {
        "p50": _percentile(vals, 0.50),
        "p90": _percentile(vals, 0.90),
        "p99": _percentile(vals, 0.99),
        "mean": sum(vals) / len(vals) if vals else 0.0,
        "max": vals[-1] if vals else 0.0,
    }


def _submit_async(svc: AsyncSolveService, cfg: TrafficConfig, ar: Arrival,
                  base: sp.csr_matrix, ops: list[sp.csr_matrix]):
    kwargs = {"deadline": ar.deadline if ar.deadline > 0 else None,
              "priority": ar.priority, "tenant": ar.tenant}
    if ar.shifts:
        return svc.submit_family(base, _rhs(cfg, ar), list(ar.shifts),
                                 **kwargs)
    return svc.submit(ops[ar.op], _rhs(cfg, ar), **kwargs)


def _run_async(cfg: TrafficConfig, arrivals: list[Arrival],
               ops: list[sp.csr_matrix], svc: AsyncSolveService) -> list:
    base = base_operator(cfg)
    reqs = []
    if cfg.arrival == "open":
        for ar in arrivals:
            svc.advance_to(ar.time)
            reqs.append(_submit_async(svc, cfg, ar, base, ops))
        svc.drain()
    else:
        # closed loop: waves of `users` synchronized clients, each wave
        # paced by the completion of the previous one plus think time
        for w0 in range(0, len(arrivals), cfg.users):
            for ar in arrivals[w0:w0 + cfg.users]:
                reqs.append(_submit_async(svc, cfg, ar, base, ops))
            svc.drain()
            svc.advance_to(svc.makespan + cfg.think_time)
    return reqs


def _run_sync(cfg: TrafficConfig, arrivals: list[Arrival],
              ops: list[sp.csr_matrix], svc: SolveService
              ) -> tuple[list, dict[int, float], float]:
    """Replay through the blocking oracle; returns a serial timeline.

    The sync service has one lane and no clock of its own, so the replay
    reconstructs one: each batch starts when the lane is free *and* its
    last member has arrived, and runs for its modeled duration.
    """
    from ..perfmodel.estimate import modeled_time

    base = base_operator(cfg)
    reqs = []
    arrival_time = {}
    for ar in arrivals:
        if ar.shifts:
            req = svc.submit_family(base, _rhs(cfg, ar), list(ar.shifts))
        else:
            req = svc.submit(ops[ar.op], _rhs(cfg, ar))
        arrival_time[req.index] = ar.time
        reqs.append(req)
    svc.flush()
    clock = 0.0
    completion: dict[int, float] = {}
    for rec in svc.batches:
        duration = float(modeled_time(rec["ledger"], DEFAULT_NRANKS,
                                      block_width=rec["width"]).total)
        ready = max(arrival_time[i] for i in rec["request_indices"])
        start = max(clock, ready)
        clock = start + duration
        rec.update(dispatch_time=start, completion_time=clock,
                   modeled_duration=duration)
        for i in rec["request_indices"]:
            completion[i] = clock
    return reqs, completion, clock


def run_traffic(cfg: TrafficConfig, mode: str = "async") -> dict[str, Any]:
    """Replay a seeded schedule through one service mode; return a report.

    The report is JSON-serializable and — for a fixed ``(cfg, mode)`` —
    byte-identical across runs (``json.dumps(..., sort_keys=True)`` of
    two invocations compares equal).  The embedded metrics snapshot comes
    from a private tracer installed for the run's duration.
    """
    arrivals = generate(cfg)
    ops = build_operators(cfg)
    opts = _options(cfg, mode)
    tracer = Tracer("summary")
    with install_tracer(tracer):
        if mode == "async":
            svc = AsyncSolveService(options=opts, preconditioner="lu")
            reqs = _run_async(cfg, arrivals, ops, svc)
            admitted = [r for r in reqs if r.rejected is None]
            rejected = [r for r in reqs if r.rejected is not None]
            if cfg.queue_depth > 0:
                # backpressure contract: admission may never let a shard
                # queue exceed its bound (the mutation test disables
                # admission and expects this to trip)
                assert max(svc.queue_high_water) <= cfg.queue_depth, (
                    f"shard queue high water {max(svc.queue_high_water)} "
                    f"exceeded service_queue_depth={cfg.queue_depth}")
            latencies = [r.latency for r in admitted]
            makespan = svc.makespan
            deadline_misses = svc.deadline_misses
            extra: dict[str, Any] = {
                "queue_high_water": list(svc.queue_high_water),
                "shard_batches": [
                    sum(1 for rec in svc.batches if rec["shard"] == s)
                    for s in range(svc.n_shards)],
            }
        elif mode == "sync":
            svc = SolveService(options=opts, preconditioner="lu")
            reqs, completion, makespan = _run_sync(cfg, arrivals, ops, svc)
            admitted, rejected = reqs, []
            latencies = [completion[r.index] - ar.time
                         for r, ar in zip(reqs, arrivals)]
            deadline_misses = sum(
                1 for r, ar in zip(reqs, arrivals)
                if ar.deadline > 0
                and completion[r.index] > ar.time + ar.deadline)
            extra = {}
        else:
            raise ValueError(f"unknown service mode {mode!r}")

    assert len(admitted) + len(rejected) == len(arrivals)
    assert all(r.done for r in admitted)
    n = len(arrivals)
    cache = svc.cache.stats()
    probes = cache["total_hits"] + cache["total_misses"]
    widths = [rec["width"] for rec in svc.batches]
    snapshot = tracer.metrics.snapshot()
    report = {
        "config": dataclasses.asdict(cfg),
        "mode": mode,
        "n_requests": n,
        "n_admitted": len(admitted),
        "n_rejected": len(rejected),
        "rejection_rate": len(rejected) / n,
        "rejection_reasons": sorted({r.rejected for r in rejected}),
        "all_converged": bool(all(
            np.atleast_1d(r.result.converged).all() for r in admitted)),
        "makespan": float(makespan),
        "throughput": len(admitted) / makespan if makespan else 0.0,
        "latency": _latency_summary(latencies),
        "deadline_misses": int(deadline_misses),
        "deadline_miss_rate": deadline_misses / len(admitted)
        if admitted else 0.0,
        "batches": {
            "count": len(widths),
            "mean_width": sum(widths) / len(widths) if widths else 0.0,
            "max_width": max(widths, default=0),
        },
        "family": {
            "requests": sum(1 for ar in arrivals if ar.shifts),
            "batches": sum(1 for rec in svc.batches
                           if rec.get("family")),
            "shifts_solved": sum(rec["width"] for rec in svc.batches
                                 if rec.get("family")),
        },
        "cache": {
            "hit_rate": cache["total_hits"] / probes if probes else 0.0,
            "total_hits": cache["total_hits"],
            "total_misses": cache["total_misses"],
            "evictions": cache["evictions"],
        },
        "schedule_digest": schedule_digest(arrivals),
        "metrics_digest": hashlib.blake2b(
            snapshot.encode(), digest_size=16).hexdigest(),
        "metrics_snapshot": snapshot,
    }
    report.update(extra)
    # the report must survive a JSON round-trip unchanged (determinism
    # gates compare serialized payloads)
    assert json.loads(json.dumps(report, sort_keys=True)) == report
    return report
