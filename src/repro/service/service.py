"""Inference-style solve server: request coalescing + setup caching.

The paper's thesis is that block methods amortize setup and communication
across right-hand sides (one factorization, BLAS-3 multi-RHS triangular
solves — Fig. 6), and that blocking pays off even for *unrelated* RHS
(Soodhalter, arXiv:1412.0393; Parks-Soodhalter-Szyld, arXiv:1604.01713).
:class:`SolveService` turns that into an API property: callers submit
independent solve requests ``(A, b, options)``; the service

1. **coalesces** queued requests that share an operator fingerprint (and
   compatible options) into one ``n x p`` block dispatched through
   :func:`repro.api.solve` — which routes to ``bgmres`` / ``pgcrodr`` /
   ``gcrodr`` exactly as a direct block call would — bounded by
   ``Options.service_pmax`` and governed by ``Options.service_flush``;
2. **caches setup** in an LRU :class:`~repro.service.cache.SetupCache`:
   ``SparseLU`` factorizations, Schwarz/AMG preconditioner setups and
   recycled subspaces are built once per operator *value* and reused by
   every later batch — the paper's non-variable fast path (section III-B)
   triggers automatically, across distinct callers;
3. **attributes cost**: each batch runs under a private
   :class:`~repro.util.ledger.CostLedger`; the total (merged back onto
   the ambient ledger, so global accounting is unchanged) is split
   exactly across the batch's columns and each request receives its
   amortized share in ``result.info["service"]["cost"]``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np
import scipy.sparse as sp

from ..krylov.base import ConvergenceHistory, Preconditioner, SolveResult
from ..krylov.pgcrodr import PseudoBlockRecycle
from ..krylov.recycling import RecycledSubspace
from ..trace import tracer as trace
from ..util import ledger
from ..util.ledger import CostLedger
from ..util.misc import as_block
from ..util.options import Options
from .cache import SetupCache
from .fingerprint import Fingerprint, operator_fingerprint

__all__ = ["SolveRequest", "SolveService", "options_key", "options_digest"]

_PRECOND_SPECS = ("lu", "schwarz", "amg")


@dataclass
class SolveRequest:
    """One queued solve.  ``result`` is filled when its batch is solved.

    A *family* request (``shifts`` non-empty) asks for every system
    ``(A + sigma_i M) x = b`` of a shifted family at once; its ``width``
    is the number of shifts and its ``result`` is a
    :class:`~repro.krylov.shifted.ShiftedFamilyResult` restricted to its
    own shifts.
    """

    index: int
    a: Any
    fingerprint: Fingerprint
    b: np.ndarray
    width: int
    options: Options
    x0: np.ndarray | None = None
    squeeze: bool = False
    shifts: tuple = ()
    mass: Any = field(default=None, repr=False)
    result: SolveResult | None = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        return self.result is not None


def options_key(options: Options) -> tuple:
    """Hashable compatibility key: requests coalesce iff keys are equal."""
    return tuple(sorted((k, repr(v)) for k, v in options.as_dict().items()))


def options_digest(okey: tuple) -> str:
    """Short stable digest of an options key, for cache kinds and records."""
    return hashlib.blake2b(repr(okey).encode(), digest_size=6).hexdigest()


def _recycle_kind(okey: tuple) -> str:
    return f"recycle:{options_digest(okey)}"


def _rhs_digest(b: np.ndarray) -> str:
    """Stable digest of a right-hand side's value, for family coalescing."""
    arr = np.ascontiguousarray(b)
    h = hashlib.blake2b(digest_size=8)
    h.update(str((arr.shape, arr.dtype.str)).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def _family_recycle_kind(okey: tuple, fpm: Fingerprint | None) -> str:
    tag = fpm.short() if fpm is not None else "none"
    return f"family_recycle:{options_digest(okey)}:{tag}"


# retained for callers that imported the private name
_options_key = options_key


def _as_matrix(a: Any) -> sp.spmatrix:
    if sp.issparse(a):
        return a
    if isinstance(a, np.ndarray):
        return sp.csr_matrix(a)
    inner = getattr(a, "a", None)
    if inner is not None and sp.issparse(inner):
        return inner
    raise TypeError(
        "built-in preconditioner specs ('lu', 'schwarz', 'amg') need an "
        f"explicit sparse/dense operator, got {type(a).__name__}; pass a "
        "Preconditioner instance or a callable builder instead")


class SolveService:
    """Queue, coalesce, and batch-solve linear-system requests.

    Parameters
    ----------
    options:
        default :class:`Options` for requests submitted without their own;
        also supplies the service knobs ``service_pmax``,
        ``service_flush`` and ``service_cache_entries``
        (``-hpddm_service_*``).
    preconditioner:
        how to precondition each operator: ``None`` (no preconditioning),
        ``"lu"`` (exact :class:`~repro.direct.solver.SparseLU`),
        ``"schwarz"`` / ``"amg"`` (built with ``precond_opts``), a
        :class:`~repro.krylov.base.Preconditioner` instance (used as-is,
        caller manages its validity), or a callable ``a -> preconditioner``
        (built once per operator fingerprint and cached).
    precond_opts:
        keyword arguments for the built-in preconditioner builders.
    cache:
        a shared :class:`SetupCache`; by default a private one sized by
        ``options.service_cache_entries``.

    Example
    -------
    >>> import numpy as np, scipy.sparse as sp
    >>> from repro.service import SolveService
    >>> from repro.util.options import Options
    >>> a = sp.diags([2.0] * 50).tocsr()
    >>> svc = SolveService(options=Options(krylov_method="gmres"))
    >>> reqs = [svc.submit(a, np.ones(50) * (j + 1)) for j in range(4)]
    >>> _ = svc.flush()
    >>> all(r.result.converged.all() for r in reqs)
    True
    >>> reqs[0].result.info["service"]["batch_width"]
    4
    """

    def __init__(self, *, options: Options | None = None,
                 preconditioner: Any = None,
                 precond_opts: dict[str, Any] | None = None,
                 cache: SetupCache | None = None):
        self.options = options or Options()
        if isinstance(preconditioner, str) \
                and preconditioner not in _PRECOND_SPECS:
            raise ValueError(f"unknown preconditioner spec {preconditioner!r}; "
                             f"expected one of {_PRECOND_SPECS}")
        self.preconditioner = preconditioner
        self.precond_opts = dict(precond_opts or {})
        self.cache = cache if cache is not None else SetupCache(
            self.options.service_cache_entries)
        self.p_max = self.options.service_pmax
        self.flush_policy = self.options.service_flush
        self._queue: dict[tuple, list[SolveRequest]] = {}
        self._next_index = 0
        self._next_batch = 0
        self.batches: list[dict[str, Any]] = []

    # -- submission ------------------------------------------------------
    def _make_request(self, a: Any, b: np.ndarray, *, options, x0,
                      shifts=(), mass=None, cls=SolveRequest,
                      **extra) -> SolveRequest:
        opts = options or self.options
        fp = operator_fingerprint(a)
        b_arr = np.asarray(b)
        sig = tuple(np.ravel(np.asarray(list(shifts))).tolist()) \
            if len(shifts) else ()
        width = len(sig) if sig else as_block(b_arr).shape[1]
        req = cls(index=self._next_index, a=a, fingerprint=fp, b=b_arr,
                  width=width, options=opts, x0=x0,
                  squeeze=b_arr.ndim == 1 and not sig,
                  shifts=sig, mass=mass, **extra)
        self._next_index += 1
        return req

    def _request_key(self, req: SolveRequest) -> tuple:
        """The coalescing-group key this request queues under.

        Family requests key on ``(fp(A), fp(M), rhs-digest, options)`` so
        every shift of a family — across callers — lands in one group,
        one setup-cache entry, and one dispatch.
        """
        if req.shifts:
            fpm = operator_fingerprint(req.mass) \
                if req.mass is not None else None
            return ("family", req.fingerprint, fpm, _rhs_digest(req.b),
                    _options_key(req.options))
        return (req.fingerprint, _options_key(req.options))

    def _enqueue(self, req: SolveRequest) -> SolveRequest:
        key = self._request_key(req)
        self._queue.setdefault(key, []).append(req)
        if self.flush_policy == "batch_full":
            self._dispatch_full_chunks(key)
        return req

    def submit(self, a: Any, b: np.ndarray, *, options: Options | None = None,
               x0: np.ndarray | None = None) -> SolveRequest:
        """Queue one solve request; returns a handle to poll for results.

        Under the ``"batch_full"`` flush policy a group is dispatched as
        soon as it reaches ``service_pmax`` columns; otherwise requests
        wait for :meth:`flush`.
        """
        return self._enqueue(self._make_request(a, b, options=options, x0=x0))

    def submit_family(self, a: Any, b: np.ndarray, shifts, *,
                      mass: Any = None, options: Options | None = None,
                      x0: np.ndarray | None = None) -> SolveRequest:
        """Queue a shifted-family request ``(A + sigma_i M) x = b``.

        Requests that share the operator, mass matrix, right-hand side
        *value* and options coalesce into a single family: their shift
        unions are solved on one shared block-Arnoldi basis by
        ``api.solve(..., shifts=...)`` and each request receives the
        slice belonging to its own shifts.
        """
        sig = tuple(np.ravel(np.asarray(list(shifts))).tolist())
        if not sig:
            raise ValueError("a family request needs at least one shift")
        return self._enqueue(self._make_request(
            a, b, options=options, x0=x0, shifts=sig, mass=mass))

    def solve(self, a: Any, b: np.ndarray, *, options: Options | None = None,
              x0: np.ndarray | None = None) -> SolveResult:
        """Synchronous convenience: submit and solve immediately.

        The request still flows through the cache (so it benefits from —
        and populates — cached setup) but is never held back waiting for
        batch-mates.
        """
        req = self.submit(a, b, options=options, x0=x0)
        if not req.done:
            self._dispatch_group(self._request_key(req))
        return req.result

    def result(self, req: SolveRequest) -> SolveResult:
        """The request's result, flushing its group if still queued.

        Under the ``"explicit"`` policy an unsolved request is an error
        (nothing dispatches without :meth:`flush`).
        """
        if not req.done:
            if self.flush_policy == "explicit":
                raise RuntimeError(
                    "request not solved yet and service_flush='explicit'; "
                    "call flush() first")
            self._dispatch_group(self._request_key(req))
        return req.result

    def flush(self) -> list[SolveRequest]:
        """Dispatch every queued request; returns the completed requests."""
        done: list[SolveRequest] = []
        for key in list(self._queue):
            done.extend(self._dispatch_group(key))
        return done

    @property
    def pending(self) -> int:
        """Number of queued, not-yet-solved requests."""
        return sum(len(reqs) for reqs in self._queue.values())

    # -- dispatch --------------------------------------------------------
    def _dispatch_full_chunks(self, key: tuple) -> None:
        """batch_full policy: peel off p_max-wide chunks as they fill."""
        reqs = self._queue.get(key)
        while reqs:
            chunk, rest = self._take_chunk(reqs)
            if not rest and sum(r.width for r in chunk) < self.p_max:
                break  # group not full yet — keep queueing
            self._solve_batch(key, chunk)
            reqs = rest
        if reqs:
            self._queue[key] = reqs
        else:
            self._queue.pop(key, None)

    def _take_chunk(self, reqs: list[SolveRequest]
                    ) -> tuple[list[SolveRequest], list[SolveRequest]]:
        """Greedy prefix with total width <= p_max (at least one request).

        A family group is never split: its members share one right-hand
        side and one Arnoldi basis, so the whole group is one dispatch
        regardless of ``p_max`` (the union of shifts is the block width).
        """
        if reqs[0].shifts:
            return list(reqs), []
        chunk: list[SolveRequest] = [reqs[0]]
        width = reqs[0].width
        i = 1
        while i < len(reqs) and width + reqs[i].width <= self.p_max:
            chunk.append(reqs[i])
            width += reqs[i].width
            i += 1
        return chunk, reqs[i:]

    def _dispatch_group(self, key: tuple) -> list[SolveRequest]:
        reqs = self._queue.pop(key, [])
        done = []
        while reqs:
            chunk, reqs = self._take_chunk(reqs)
            self._solve_batch(key, chunk)
            done.extend(chunk)
        return done

    # -- setup resolution ------------------------------------------------
    def _resolve_preconditioner(self, a: Any, fp: Fingerprint
                                ) -> tuple[Any, bool | None]:
        """(preconditioner, cache_hit); hit is None when nothing is cached."""
        spec = self.preconditioner
        if spec is None:
            return None, None
        if isinstance(spec, Preconditioner):
            return spec, None
        if spec == "lu":
            from ..direct.solver import SparseLU
            lu, hit = self.cache.get_or_build(
                fp, "lu", lambda: SparseLU(_as_matrix(a), **self.precond_opts))
            return lu.as_preconditioner(), hit
        if spec == "schwarz":
            from ..precond.schwarz import SchwarzPreconditioner
            return self.cache.get_or_build(
                fp, "precond",
                lambda: SchwarzPreconditioner(_as_matrix(a),
                                              **self.precond_opts))
        if spec == "amg":
            from ..precond.amg import SmoothedAggregationAMG
            return self.cache.get_or_build(
                fp, "precond",
                lambda: SmoothedAggregationAMG(_as_matrix(a),
                                               **self.precond_opts))
        if callable(spec):
            return self.cache.get_or_build(fp, "precond", lambda: spec(a))
        raise TypeError(f"cannot interpret {type(spec).__name__} as a "
                        "preconditioner spec")

    def _cached_recycle(self, fp: Fingerprint, okey: tuple, p: int
                        ) -> tuple[Any, bool | None]:
        """Recycled state for this (operator, options) pair, if compatible."""
        space = self.cache.get(fp, _recycle_kind(okey))
        if space is None:
            return None, False
        if isinstance(space, PseudoBlockRecycle) and space.p != p:
            return None, False  # width changed; pseudo-block state unusable
        return space, True

    # -- the batch solve -------------------------------------------------
    def _solve_batch(self, key: tuple, chunk: list[SolveRequest]) -> None:
        from .. import api  # deferred: repro.api has no import-time cycle here

        if chunk and chunk[0].shifts:
            return self._solve_family_batch(key, chunk)
        fp, okey = key
        opts = chunk[0].options
        batch_id = self._next_batch
        self._next_batch += 1

        blocks = [as_block(r.b) for r in chunk]
        bmat = np.hstack(blocks) if len(blocks) > 1 else blocks[0]
        p = bmat.shape[1]
        x0 = None
        if any(r.x0 is not None for r in chunk):
            cols = [as_block(r.x0) if r.x0 is not None
                    else np.zeros((bmat.shape[0], r.width), dtype=bmat.dtype)
                    for r in chunk]
            x0 = np.hstack(cols) if len(cols) > 1 else cols[0]

        ambient = ledger.current()
        batch_led = CostLedger()
        recycling = opts.is_recycling
        tr = trace.current()
        # the span opens against the *ambient* ledger before the private
        # batch ledger is installed, so its window sees exactly the merged
        # batch total (inner solve spans record against the batch ledger
        # and are excluded from this span's exclusive cost — see
        # Span.exclusive)
        with tr.span("service.batch", batch=batch_id, width=p,
                     requests=len(chunk)):
            with ledger.install(batch_led):
                m, setup_hit = self._resolve_preconditioner(chunk[0].a, fp)
                recycle = same_system = None
                adopted = False
                if recycling:
                    recycle, found = self._cached_recycle(fp, okey, p)
                    # the cache key is the *value* fingerprint, so a hit
                    # means the operator is numerically unchanged: take the
                    # paper's same-system fast path (section III-B)
                    # automatically — except for opaque operators, where
                    # equality only means object identity and in-place
                    # mutation is undetectable, and except for *adopted*
                    # spaces (``SetupCache.adopt_from``), which keep the
                    # previous operator's fingerprint stamp so the
                    # adoption-boundary repair runs instead of being
                    # trusted against the wrong operator.
                    if found and not recycle.matches_fingerprint(fp):
                        adopted = True
                    elif found and not fp.opaque:
                        same_system = True
                res = api.solve(chunk[0].a, bmat, m, options=opts, x0=x0,
                                recycle=recycle, same_system=same_system)
                new_space = res.info.get("recycle")
                if recycling and new_space is not None:
                    new_space.fingerprint = fp
                    self.cache.put(fp, _recycle_kind(okey), new_space)
            ambient.merge(batch_led)
        tr.metrics.histogram("service_batch_occupancy").observe(p)
        tr.metrics.counter("service_requests_total").inc(len(chunk))
        tr.metrics.counter("service_batches_total").inc()
        if setup_hit is not None:
            tr.metrics.counter("service_setup_cache_total").inc(
                outcome="hit" if setup_hit else "miss")
        if recycling:
            tr.metrics.counter("service_recycle_cache_total").inc(
                outcome="hit" if same_system else "miss")

        self._scatter(chunk, res, batch_led, batch_id=batch_id, p=p,
                      setup_hit=setup_hit,
                      recycle_hit=bool(same_system) if recycling else None,
                      recycle_adopted=adopted if recycling else None)
        self.batches.append({
            "batch": batch_id,
            "fingerprint": fp.short(),
            "okey_digest": options_digest(okey),
            "requests": len(chunk),
            "request_indices": [r.index for r in chunk],
            "width": p,
            "method": res.method,
            "iterations": res.iterations,
            "setup_cache_hit": setup_hit,
            "ledger": batch_led,
        })

    def _scatter(self, chunk: list[SolveRequest], res: SolveResult,
                 batch_led: CostLedger, *, batch_id: int, p: int,
                 setup_hit: bool | None, recycle_hit: bool | None,
                 recycle_adopted: bool | None = None) -> None:
        """Slice the block result and the ledger back onto each request."""
        shares = batch_led.split(p)
        x = as_block(np.asarray(res.x))
        records = res.history.records
        cache_stats = self.cache.stats()
        j0 = 0
        for req in chunk:
            j1 = j0 + req.width
            cost = CostLedger()
            for share in shares[j0:j1]:
                cost.merge(share)
            hist = ConvergenceHistory(
                rhs_norms=np.asarray(res.history.rhs_norms)[j0:j1])
            hist.records = [rec[j0:j1] for rec in records]
            xcol = x[:, j0:j1]
            info: dict[str, Any] = {
                "service": {
                    "batch": batch_id,
                    "batch_width": p,
                    "columns": (j0, j1),
                    "coalesced_requests": len(chunk),
                    "fingerprint": req.fingerprint.short(),
                    "setup_cache_hit": setup_hit,
                    "recycle_cache_hit": recycle_hit,
                    "recycle_adopted": recycle_adopted,
                    "cache": cache_stats,
                    "cost": cost,
                },
            }
            for carried in ("verify", "same_system", "k", "variant"):
                if carried in res.info:
                    info[carried] = res.info[carried]
            req.result = SolveResult(
                x=xcol[:, 0] if req.squeeze else xcol,
                converged=np.atleast_1d(res.converged)[j0:j1],
                iterations=res.iterations,
                history=hist,
                method=res.method,
                restarts=res.restarts,
                breakdown=res.breakdown,
                info=info,
            )
            j0 = j1

    # -- the family batch solve ------------------------------------------
    def _solve_family_batch(self, key: tuple,
                            chunk: list[SolveRequest]) -> None:
        """One dispatch for a coalesced shifted family.

        The union of the chunk's shifts is solved on a single shared
        block-Arnoldi basis through ``api.solve(..., shifts=...)``; the
        mass factorization (when present) and the recycle space are the
        group's one setup-cache entry, keyed on the family fingerprint
        ``(fp(A), fp(M), rhs-digest, options)``.
        """
        from .. import api

        _, fp, fpm, _bdigest, okey = key
        opts = chunk[0].options
        batch_id = self._next_batch
        self._next_batch += 1

        union: list = []
        for req in chunk:
            for s in req.shifts:
                if s not in union:
                    union.append(s)
        k = len(union)

        ambient = ledger.current()
        batch_led = CostLedger()
        recycling = opts.is_recycling
        rkind = _family_recycle_kind(okey, fpm)
        tr = trace.current()
        with tr.span("service.batch", batch=batch_id, width=k,
                     requests=len(chunk), family=True):
            with ledger.install(batch_led):
                mass_op = setup_hit = None
                if chunk[0].mass is not None:
                    from ..direct.solver import SparseLU
                    mass = chunk[0].mass
                    mass_op, setup_hit = self.cache.get_or_build(
                        fpm, "mass_lu", lambda: SparseLU(_as_matrix(mass)))
                recycle = recycle_hit = None
                if recycling:
                    recycle = self.cache.get(fp, rkind)
                    recycle_hit = recycle is not None
                fam = api.solve(chunk[0].a, chunk[0].b, options=opts,
                                x0=chunk[0].x0, shifts=union, mass=mass_op,
                                recycle=recycle)
                new_space = fam.info.get("recycle")
                if recycling and new_space is not None:
                    new_space.fingerprint = fp
                    self.cache.put(fp, rkind, new_space)
            ambient.merge(batch_led)
        tr.metrics.histogram("service_batch_occupancy").observe(k)
        tr.metrics.counter("service_requests_total").inc(len(chunk))
        tr.metrics.counter("service_batches_total").inc()
        tr.metrics.counter("service_family_batches_total").inc()
        if setup_hit is not None:
            tr.metrics.counter("service_setup_cache_total").inc(
                outcome="hit" if setup_hit else "miss")
        if recycling:
            tr.metrics.counter("service_recycle_cache_total").inc(
                outcome="hit" if recycle_hit else "miss")

        self._scatter_family(chunk, union, fam, batch_led,
                             batch_id=batch_id, setup_hit=setup_hit,
                             recycle_hit=recycle_hit)
        self.batches.append({
            "batch": batch_id,
            "fingerprint": fp.short(),
            "okey_digest": options_digest(okey),
            "requests": len(chunk),
            "request_indices": [r.index for r in chunk],
            "width": k,
            "family": True,
            "shifts": k,
            "method": fam.method,
            "iterations": fam.iterations,
            "setup_cache_hit": setup_hit,
            "ledger": batch_led,
        })

    def _scatter_family(self, chunk, union: list, fam, batch_led: CostLedger,
                        *, batch_id: int, setup_hit, recycle_hit) -> None:
        """Slice the family result and ledger back onto each request.

        A shift requested by several callers is attributed to each of
        them (its column share appears in every requester's cost), so
        per-request costs over-count shared columns; the batch ledger in
        ``self.batches`` remains the conserved total.
        """
        from ..krylov.shifted import ShiftedFamilyResult

        k = len(union)
        shares = batch_led.split(k)
        pos = {s: i for i, s in enumerate(union)}
        cache_stats = self.cache.stats()
        for req in chunk:
            idx = [pos[s] for s in req.shifts]
            cost = CostLedger()
            for i in idx:
                cost.merge(shares[i])
            info = dict(fam.info)
            info["service"] = {
                "batch": batch_id,
                "family": True,
                "batch_width": k,
                "shift_indices": idx,
                "coalesced_requests": len(chunk),
                "fingerprint": req.fingerprint.short(),
                "setup_cache_hit": setup_hit,
                "recycle_cache_hit": recycle_hit,
                "cache": cache_stats,
                "cost": cost,
            }
            req.result = ShiftedFamilyResult(
                shifts=tuple(req.shifts),
                results=[fam.results[i] for i in idx],
                iterations=fam.iterations,
                restarts=fam.restarts,
                method=fam.method,
                breakdown=fam.breakdown,
                info=info,
            )
