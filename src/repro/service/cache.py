"""LRU setup cache keyed by operator fingerprints.

One cache *entry* corresponds to one operator (one
:class:`~repro.service.fingerprint.Fingerprint`) and holds every setup
artifact built for it — ``SparseLU`` factorizations, Schwarz/AMG
preconditioners, recycled subspaces — under a free-form *kind* key.  The
paper's amortization argument (setup is paid once, solves are cheap)
becomes an API property: the first request against an operator pays for
setup, every later request against a value-equal operator hits the cache,
even across distinct :class:`repro.api.Solver` instances.

Eviction is entry-level LRU bounded by ``max_entries``: touching any
artifact of an operator refreshes the whole entry.  Mutating a cached
operator's ``data`` in place changes its fingerprint, so the next lookup
*misses* (never returns stale factors); the stale entry ages out of the
LRU normally.

Hit/miss accounting is per ``(fingerprint, kind)``: probing one operator
under two different options digests (two distinct recycle ``kind`` keys)
in the same flush wave increments two independent counters, so
per-operator attribution never conflates digests that merely share an
operator.  ``stats()`` still reports the per-kind aggregation for
backward compatibility; ``key_stats(fp)`` exposes the per-operator
breakdown.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Any, Callable

from .fingerprint import Fingerprint

__all__ = ["SetupCache"]


class SetupCache:
    """Size-bounded LRU cache of per-operator setup artifacts.

    Parameters
    ----------
    max_entries:
        maximum number of distinct operators kept (>= 1).  The
        least-recently-used operator (and all its artifacts) is evicted
        when a new operator would exceed the bound.
    """

    def __init__(self, max_entries: int = 32):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[Fingerprint, dict[str, Any]] = OrderedDict()
        #: per-(fingerprint, kind) counters — NOT per kind: one operator
        #: probed under two options digests must count twice, once each.
        self.hits: Counter = Counter()
        self.misses: Counter = Counter()
        self.evictions: int = 0

    # -- core ------------------------------------------------------------
    def get(self, fp: Fingerprint, kind: str) -> Any | None:
        """Look up one artifact; counts a hit or miss and refreshes LRU."""
        entry = self._entries.get(fp)
        if entry is not None and kind in entry:
            self._entries.move_to_end(fp)
            self.hits[fp, kind] += 1
            return entry[kind]
        self.misses[fp, kind] += 1
        return None

    def put(self, fp: Fingerprint, kind: str, artifact: Any) -> None:
        """Store one artifact, evicting the LRU operator beyond the bound."""
        entry = self._entries.get(fp)
        if entry is None:
            entry = self._entries[fp] = {}
        entry[kind] = artifact
        self._entries.move_to_end(fp)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_or_build(self, fp: Fingerprint, kind: str,
                     builder: Callable[[], Any]) -> tuple[Any, bool]:
        """Return ``(artifact, was_hit)``; on a miss, build and store it."""
        found = self.get(fp, kind)
        if found is not None:
            return found, True
        built = builder()
        self.put(fp, kind, built)
        return built, False

    def adopt_from(self, fp_new: Fingerprint, fp_prev: Fingerprint,
                   kinds: list[str] | None = None) -> list[str]:
        """Carry recycle artifacts from a neighboring operator's entry.

        Transient sequences produce *adjacent* operators whose recycled
        subspaces are near-invariant but whose fingerprints differ, so a
        plain ``get(fp_new, ...)`` can never seed from the previous step.
        ``adopt_from`` copies the recycle-kind artifacts of ``fp_prev``
        into ``fp_new``'s entry where ``fp_new`` does not already hold
        one.  The adopted artifact keeps its *original* fingerprint stamp:
        the solver sees a pair that does not match the new operator and
        must run the adoption-boundary repair (variable-sequence
        ``qr(A U)`` update) — adopted spaces are repaired, never trusted.

        ``kinds`` restricts the carry-over to explicit kind keys; by
        default every ``recycle:*`` / ``family_recycle:*`` artifact is
        eligible.  Returns the list of kinds actually adopted.
        """
        if fp_new == fp_prev:
            return []
        prev = self._entries.get(fp_prev)
        if not prev:
            return []
        if kinds is None:
            kinds = [k for k in prev
                     if k.startswith("recycle:")
                     or k.startswith("family_recycle:")]
        cur = self._entries.get(fp_new, {})
        adopted: list[str] = []
        for kind in kinds:
            if kind not in prev or kind in cur:
                continue
            artifact = prev[kind]
            copier = getattr(artifact, "copy", None)
            if callable(copier):
                artifact = copier()
            self.put(fp_new, kind, artifact)
            adopted.append(kind)
        return adopted

    # -- management ------------------------------------------------------
    def invalidate(self, fp: Fingerprint | None = None,
                   kind: str | None = None) -> None:
        """Drop one artifact, one operator's entry, or everything.

        ``invalidate()`` clears the cache; ``invalidate(fp)`` drops every
        artifact of one operator; ``invalidate(fp, kind)`` drops a single
        artifact (e.g. only the recycled subspace).
        """
        if fp is None:
            self._entries.clear()
            return
        if kind is None:
            self._entries.pop(fp, None)
            return
        entry = self._entries.get(fp)
        if entry is not None:
            entry.pop(kind, None)
            if not entry:
                del self._entries[fp]

    def fingerprints(self) -> list[Fingerprint]:
        """Cached operators, LRU-first (next-to-evict at index 0)."""
        return list(self._entries)

    def key_stats(self, fp: Fingerprint) -> dict[str, dict[str, int]]:
        """Per-kind hit/miss counts for *one* operator.

        The per-``(fingerprint, kind)`` granularity is the regression
        surface for the double-count bug: two options digests probing the
        same operator in one flush wave must land on distinct counters.
        """
        kinds = sorted({k for (f, k) in self.hits if f == fp}
                       | {k for (f, k) in self.misses if f == fp})
        return {k: {"hits": self.hits[fp, k], "misses": self.misses[fp, k]}
                for k in kinds}

    def stats(self) -> dict[str, Any]:
        """Hit/miss/eviction counters, as surfaced in ``info["service"]``.

        ``hits``/``misses`` aggregate over fingerprints (per kind) for
        backward compatibility with existing consumers.
        """
        by_kind_hits: Counter = Counter()
        for (_, kind), n in self.hits.items():
            by_kind_hits[kind] += n
        by_kind_misses: Counter = Counter()
        for (_, kind), n in self.misses.items():
            by_kind_misses[kind] += n
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": dict(by_kind_hits),
            "misses": dict(by_kind_misses),
            "total_hits": sum(self.hits.values()),
            "total_misses": sum(self.misses.values()),
            "evictions": self.evictions,
        }

    def __contains__(self, fp: Fingerprint) -> bool:
        return fp in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"SetupCache(entries={len(self._entries)}/{self.max_entries}, "
                f"hits={sum(self.hits.values())}, "
                f"misses={sum(self.misses.values())})")
