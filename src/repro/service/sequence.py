"""Sequence requests: transient workloads driven through the service.

:class:`SequenceDriver` feeds the operator/RHS sequences of
:mod:`repro.problems.transient` through a :class:`SolveService` (sync) or
:class:`AsyncSolveService` — the *sequence request* type of the service
layer.  A sequence is ordered per tenant (step ``t+1``'s RHS derives from
step ``t``'s solution), so the driver advances all tenants in lock-step
*waves*: within a wave every tenant's next step is submitted, the service
coalesces across tenants exactly as it would for independent requests,
and only after the wave's batches complete does any tenant's next step
exist.  Intra-sequence order is preserved while cross-tenant coalescing
still happens.

Per step the driver exercises the full reuse ladder:

* unchanged fingerprint → same-system fast path + setup-cache hit;
* epoch boundary (``dt`` / frequency change) → recycle carry-over via
  :meth:`SetupCache.adopt_from` — the adopted space keeps its foreign
  fingerprint stamp and is *repaired* at the adoption boundary, never
  trusted (``options.sequence_adopt``);
* ``options.sequence_mode="shifted"`` → each step is a one-shift family
  request ``base + sigma M`` against the ramp's fixed base, so the
  fingerprint never changes and family recycling needs no adoption.

Cost attribution is per step: each record carries the request's ledger
share (``info["service"]["cost"]``) and its modeled duration at the
driver's rank count; shares merge bit-for-bit back to the batch ledgers
(the ``ledger_verified`` check of ``bench_transient``).

Trace shape (checked by :func:`repro.trace.gate.check_sequence_shape`)::

    sequence.run
      sequence.wave (wave=w)
        service.batch ...        # the wave's dispatches
        sequence.step (tenant=..., step=..., fp_changed=..., batch=...)
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..perfmodel.estimate import modeled_time
from ..trace import tracer as trace
from ..util.options import Options
from .fingerprint import operator_fingerprint
from .scheduler import DEFAULT_NRANKS, AsyncSolveService
from .service import SolveService

__all__ = ["SequenceDriver", "SequenceHandle"]


class SequenceHandle:
    """One tenant's live sequence: schedule, field state, step records."""

    def __init__(self, sequence: Any, options: Options, tenant: str):
        self.sequence = sequence
        self.options = options
        self.tenant = tenant
        self.steps = sequence.steps()
        self.u = sequence.u0()
        self.fp_prev = None
        self.records: list[dict[str, Any]] = []
        if options.sequence_mode == "shifted":
            # the family base never changes along the ramp, so its
            # fingerprint — and the family recycle entry under it — is
            # constant for the whole sequence
            self.base_fp = operator_fingerprint(sequence.base)
        else:
            self.base_fp = None

    @property
    def done(self) -> bool:
        return len(self.records) >= len(self.steps)

    @property
    def all_converged(self) -> bool:
        return all(r["converged"] for r in self.records)

    @property
    def total_iterations(self) -> int:
        return sum(r["iterations"] for r in self.records)

    @property
    def modeled_seconds(self) -> float:
        return sum(r["modeled_seconds"] for r in self.records)


class SequenceDriver:
    """Advance one or more transient sequences through a solve service.

    Parameters
    ----------
    service:
        a :class:`SolveService` or :class:`AsyncSolveService`; its cache
        provides setup reuse and (when it implements ``adopt_from``)
        recycle carry-over across epoch boundaries.
    nranks:
        rank count for per-step modeled durations.
    """

    def __init__(self, service: SolveService, *,
                 nranks: int = DEFAULT_NRANKS):
        self.service = service
        self.nranks = int(nranks)
        self.handles: list[SequenceHandle] = []
        self.is_async = isinstance(service, AsyncSolveService)

    def add(self, sequence: Any, *, options: Options | None = None,
            tenant: str | None = None) -> SequenceHandle:
        """Register one sequence; ``options.sequence_*`` select its mode."""
        opts = options or self.service.options
        if opts.sequence_mode == "shifted" \
                and getattr(sequence, "mass", None) is None \
                and sequence.base is None:
            raise ValueError("shifted sequence mode needs a family base")
        if opts.recycle_same_system and opts.sequence_adopt \
                and opts.sequence_mode == "operator":
            # recycle_same_system forces the fast path unconditionally —
            # an adopted (foreign-fingerprint) pair would be *trusted*
            # against the wrong operator instead of repaired.  The service
            # already takes the fast path automatically on true
            # fingerprint hits, so the flag buys nothing here.
            raise ValueError(
                "recycle_same_system cannot be combined with "
                "sequence_adopt: an adopted recycle space would be "
                "trusted across the epoch boundary instead of repaired "
                "(the service auto-detects unchanged operators by value "
                "fingerprint, so the flag is unnecessary)")
        handle = SequenceHandle(
            sequence, opts, tenant or f"seq{len(self.handles)}")
        if len({h.tenant for h in self.handles + [handle]}) \
                != len(self.handles) + 1:
            raise ValueError(f"duplicate tenant name {handle.tenant!r}")
        self.handles.append(handle)
        return handle

    # -- one wave --------------------------------------------------------
    def _submit_step(self, handle: SequenceHandle, wave: int) -> dict:
        seq = handle.sequence
        opts = handle.options
        step = handle.steps[wave]
        rhs = seq.rhs(step, handle.u)
        kwargs: dict[str, Any] = {}
        if self.is_async:
            kwargs["tenant"] = handle.tenant
        if opts.sequence_mode == "shifted":
            fp = handle.base_fp
            fp_changed = handle.fp_prev is None
            adopted: list[str] = []
            req = self.service.submit_family(
                seq.base, rhs, [step.sigma], mass=seq.mass,
                options=opts, **kwargs)
        else:
            a = seq.operator(step)
            fp = operator_fingerprint(a)
            fp_changed = handle.fp_prev is None or fp != handle.fp_prev
            adopted = []
            if fp_changed and handle.fp_prev is not None \
                    and opts.sequence_adopt \
                    and hasattr(self.service.cache, "adopt_from"):
                adopted = self.service.cache.adopt_from(fp, handle.fp_prev)
            x0 = handle.u if opts.sequence_warm_start else None
            req = self.service.submit(a, rhs, options=opts, x0=x0, **kwargs)
        if getattr(req, "rejected", None) is not None:
            raise RuntimeError(
                f"sequence step {step.index} of tenant {handle.tenant!r} "
                f"was rejected at admission ({req.rejected}); sequences "
                f"need admission (disable service_queue_depth/deadline)")
        handle.fp_prev = fp
        return {"handle": handle, "step": step, "req": req, "fp": fp,
                "fp_changed": fp_changed, "adopted": adopted}

    def _complete_step(self, pend: dict) -> None:
        handle, step, req = pend["handle"], pend["step"], pend["req"]
        res = self.service.result(req)
        x = np.asarray(res.x)
        if x.ndim == 2:  # family requests come back as an (n, 1) slice
            x = x[:, 0]
        handle.u = x.copy()
        svc = res.info["service"]
        cost = svc["cost"]
        modeled = float(modeled_time(cost, self.nranks,
                                     block_width=svc["batch_width"]).total)
        converged = bool(np.asarray(res.converged).all())
        record = {
            "step": step.index,
            "tenant": handle.tenant,
            "epoch": step.epoch,
            "t": step.t,
            "dt": step.dt,
            "sigma": step.sigma,
            "mode": handle.options.sequence_mode,
            "fingerprint": pend["fp"].short(),
            "fp_changed": pend["fp_changed"],
            "adopted_kinds": list(pend["adopted"]),
            "batch": svc["batch"],
            "batch_width": svc["batch_width"],
            "coalesced_requests": svc["coalesced_requests"],
            "setup_cache_hit": svc["setup_cache_hit"],
            "recycle_cache_hit": svc.get("recycle_cache_hit"),
            "recycle_adopted": svc.get("recycle_adopted"),
            "iterations": res.iterations,
            "converged": converged,
            "modeled_seconds": modeled,
            "cost": cost,
        }
        handle.records.append(record)
        tr = trace.current()
        with tr.span("sequence.step", tenant=handle.tenant,
                     step=step.index, epoch=step.epoch,
                     fp_changed=pend["fp_changed"],
                     adopted=bool(pend["adopted"]),
                     batch=svc["batch"]):
            pass

    # -- the drive loop --------------------------------------------------
    def run(self, *, strict: bool = True) -> list[dict[str, Any]]:
        """Advance every registered sequence to completion, in waves.

        Returns the flat list of per-step records (wave-major, then
        tenant registration order).  With ``strict`` (default) a
        non-converged step raises immediately — transient state would
        propagate garbage into every later RHS.
        """
        if not self.handles:
            return []
        n_waves = max(len(h.steps) for h in self.handles)
        tr = trace.current()
        out: list[dict[str, Any]] = []
        with tr.span("sequence.run", tenants=len(self.handles),
                     waves=n_waves):
            for wave in range(n_waves):
                live = [h for h in self.handles if wave < len(h.steps)]
                if not live:
                    break
                with tr.span("sequence.wave", wave=wave):
                    pending = [self._submit_step(h, wave) for h in live]
                    self.service.flush()
                    for pend in pending:
                        self._complete_step(pend)
                for pend in pending:
                    rec = pend["handle"].records[-1]
                    out.append(rec)
                    if strict and not rec["converged"]:
                        raise RuntimeError(
                            f"sequence step {rec['step']} of tenant "
                            f"{rec['tenant']!r} did not converge "
                            f"({rec['iterations']} iterations)")
        return out

    # -- aggregation -----------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Macro numbers: modeled seconds per simulated second, per tenant."""
        tenants = {}
        for h in self.handles:
            sim = h.sequence.total_time if h.records else 0.0
            modeled = h.modeled_seconds
            tenants[h.tenant] = {
                "steps": len(h.records),
                "epochs": h.sequence.n_epochs,
                "mode": h.options.sequence_mode,
                "iterations": h.total_iterations,
                "all_converged": h.all_converged,
                "modeled_seconds": modeled,
                "simulated_seconds": sim,
                "modeled_per_simulated_second":
                    modeled / sim if sim else 0.0,
            }
        total_modeled = sum(t["modeled_seconds"] for t in tenants.values())
        total_sim = sum(t["simulated_seconds"] for t in tenants.values())
        return {
            "tenants": tenants,
            "steps": sum(t["steps"] for t in tenants.values()),
            "all_converged": all(t["all_converged"]
                                 for t in tenants.values()),
            "modeled_seconds": total_modeled,
            "simulated_seconds": total_sim,
            "modeled_per_simulated_second":
                total_modeled / total_sim if total_sim else 0.0,
        }
