"""Cheap operator fingerprints for setup caching and same-system detection.

A fingerprint answers "is this numerically the *same* operator I solved
with before?" without holding a reference to the matrix.  It splits into

* a **structure** hash over ``shape``, ``dtype`` and the sparsity pattern
  (``indptr``/``indices``), which changes when the graph changes; and
* a **value** hash over the ``data`` array, which changes when any entry
  changes — including in-place mutation of a cached operator, which must
  produce a cache *miss*, never a stale factorization.

Hashing is a single streaming pass over the CSR arrays (BLAKE2b), i.e.
``O(nnz)`` bytes — negligible next to a factorization or even one SpMM
sweep, so :class:`repro.api.Solver` can afford to fingerprint on every
call.

Operators that do not expose their entries (bare :class:`repro.Operator`
wrappers around callables) get an *opaque* fingerprint derived from their
GC-safe identity tag: caching then degrades to object identity, which is
safe (two distinct opaque operators never alias) but cannot coalesce
value-equal duplicates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

import numpy as np
import scipy.sparse as sp

from ..util.misc import identity_tag

__all__ = ["Fingerprint", "operator_fingerprint"]


def _digest(*arrays: np.ndarray) -> str:
    h = hashlib.blake2b(digest_size=16)
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        h.update(str(arr.dtype).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class Fingerprint:
    """Hashable identity of an operator's numerical content.

    Two fingerprints compare equal iff shape, dtype, sparsity structure
    and values all match (up to BLAKE2b collision odds, ~2^-64).  For
    opaque operators ``structure``/``values`` encode the identity tag and
    equality degrades to object identity.
    """

    kind: str                 # "csr", "csc", "dense", "opaque"
    shape: tuple[int, ...]
    dtype: str
    structure: str
    values: str

    @property
    def opaque(self) -> bool:
        return self.kind == "opaque"

    def same_structure(self, other: "Fingerprint") -> bool:
        """Equal sparsity pattern (values may differ)."""
        return (self.kind == other.kind and self.shape == other.shape
                and self.structure == other.structure)

    def short(self) -> str:
        """Compact label for logs and ``info["service"]`` reports."""
        return f"{self.kind}{self.shape[0]}x{self.shape[-1]}:{self.values[:8]}"


def operator_fingerprint(a: Any) -> Fingerprint:
    """Fingerprint a sparse matrix, dense array, or operator-like object.

    Accepts everything :func:`repro.as_operator` accepts.  Distributed
    operators (:class:`repro.distla.DistributedCSR`) are fingerprinted
    through their global CSR matrix when they expose one, so a service
    can coalesce requests against value-equal distributed operators too.
    """
    # unwrap distributed operators that carry their assembled global matrix
    inner = getattr(a, "a", None)
    if inner is not None and sp.issparse(inner) and not sp.issparse(a) \
            and not isinstance(a, np.ndarray):
        a = inner
    if sp.issparse(a):
        if a.format not in ("csr", "csc"):
            a = a.tocsr()
        return Fingerprint(
            kind=a.format,
            shape=tuple(a.shape),
            dtype=str(a.dtype),
            structure=_digest(a.indptr, a.indices),
            values=_digest(a.data),
        )
    if isinstance(a, np.ndarray):
        return Fingerprint(
            kind="dense",
            shape=tuple(a.shape),
            dtype=str(a.dtype),
            structure="dense",
            values=_digest(a),
        )
    # Operator / DistributedCSR without a global matrix / duck-typed: fall
    # back to the GC-safe identity tag (a fresh tag per distinct object).
    tag = getattr(a, "tag", None)
    if tag is None:
        tag = identity_tag(a)
    shape = tuple(getattr(a, "shape", ()) or ())
    dtype = str(getattr(a, "dtype", "unknown"))
    return Fingerprint(kind="opaque", shape=shape, dtype=dtype,
                       structure=f"tag:{tag}", values=f"tag:{tag}")
