"""Solve service: RHS coalescing into block solves + setup caching.

See :mod:`repro.service.service` for the architecture, and
``docs/SERVICE.md`` for batching semantics, cache keys and invalidation.
"""

from .cache import SetupCache
from .fingerprint import Fingerprint, operator_fingerprint
from .scheduler import AsyncRequest, AsyncSolveService, make_service
from .sequence import SequenceDriver, SequenceHandle
from .service import SolveRequest, SolveService, options_digest, options_key
from .shard import ConsistentHashRouter, ShardedSetupCache

__all__ = [
    "AsyncRequest",
    "AsyncSolveService",
    "ConsistentHashRouter",
    "Fingerprint",
    "SequenceDriver",
    "SequenceHandle",
    "SetupCache",
    "ShardedSetupCache",
    "SolveRequest",
    "SolveService",
    "make_service",
    "operator_fingerprint",
    "options_digest",
    "options_key",
]
