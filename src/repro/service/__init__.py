"""Solve service: RHS coalescing into block solves + setup caching.

See :mod:`repro.service.service` for the architecture, and
``docs/SERVICE.md`` for batching semantics, cache keys and invalidation.
"""

from .cache import SetupCache
from .fingerprint import Fingerprint, operator_fingerprint
from .service import SolveRequest, SolveService

__all__ = [
    "Fingerprint",
    "SetupCache",
    "SolveRequest",
    "SolveService",
    "operator_fingerprint",
]
