"""Async multi-tenant front end: deadlines, admission control, sharding.

:class:`AsyncSolveService` wraps the synchronous coalescing core of
:class:`~repro.service.service.SolveService` in a deterministic
event-loop scheduler running in *simulated* time: batch durations come
from :func:`repro.perfmodel.modeled_time` applied to each batch's
``CostLedger``, never from the wall clock, so every run of a seeded
workload is byte-identical.  On top of the base class it adds

* **deadlines and priorities** — each request carries an absolute
  deadline and an integer priority; dispatch order within a shard is
  earliest-deadline-first among equal priorities (``urgency()``), and a
  queued group whose earliest deadline arrives while its shard is idle
  is dispatched immediately rather than waiting to fill;
* **admission control and backpressure** — with
  ``Options.service_queue_depth > 0`` a submit against a full shard
  queue is *rejected* (an explicit :attr:`AsyncRequest.rejected` reason,
  never an exception and never a silent drop), as is a request whose
  deadline already passed;
* **sharding** — operators are partitioned across per-shard
  :class:`~repro.service.shard.ShardedSetupCache` instances by
  consistent hashing; each shard is an independent execution lane with
  its own queue depth, busy clock, and eviction pressure;
* **cross-batch pipelining** — while a shard executes one coalesced
  block, later arrivals accumulate in its queue; the completion event
  dispatches whatever accumulated as the next block, so a busy shard
  always has a batch in flight and one forming;
* **exact cost attribution** — batches run through the base class's
  ``_solve_batch``, so the private-ledger merge/split conservation
  contract is untouched: summed per-request shares equal the batch
  ledger bit-for-bit, sharded or not.

The synchronous service remains the correctness oracle
(``-hpddm_service_mode {sync,async}``): at equal inputs both modes
produce the same solutions, the async mode merely reorders batches in
modeled time.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..krylov.base import SolveResult
from ..perfmodel.estimate import modeled_time
from ..trace import tracer as trace
from ..util.options import Options
from .service import SolveRequest, SolveService
from .shard import ShardedSetupCache

__all__ = ["AsyncRequest", "AsyncSolveService", "make_service"]

#: rank count at which batch durations are modeled (the paper's Curie
#: strong-scaling configuration; matches ``scripts/ci.py`` and the
#: service bench)
DEFAULT_NRANKS = 64


@dataclass
class AsyncRequest(SolveRequest):
    """A queued solve with scheduling metadata, in simulated seconds."""

    arrival: float = 0.0
    deadline: float = math.inf  #: absolute; ``inf`` = none
    priority: int = 0           #: larger = more urgent
    tenant: str = "default"
    shard: int = 0
    rejected: str | None = None  #: admission-refusal reason, else ``None``
    dispatch_time: float | None = None
    completion_time: float | None = None

    def urgency(self) -> tuple[int, float, int]:
        """Sort key: priority first, then EDF, then arrival order."""
        return (-self.priority, self.deadline, self.index)

    @property
    def latency(self) -> float | None:
        """Arrival-to-completion time in modeled seconds, once solved."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival


class AsyncSolveService(SolveService):
    """Deadline-scheduled, sharded, pipelined solve service.

    Simulated time only advances through :meth:`advance_to` and
    :meth:`drain`; :meth:`submit` stamps requests with the current clock.
    All service knobs come from ``options``: ``service_shards`` (lanes and
    cache shards), ``service_queue_depth`` (per-shard admission bound,
    0 = unbounded), ``service_deadline`` (default relative deadline,
    0 = none), plus the inherited ``service_pmax`` / ``service_flush`` /
    ``service_cache_entries``.

    Parameters are those of :class:`SolveService` plus ``nranks``, the
    rank count at which the perfmodel converts batch ledgers to modeled
    durations.
    """

    def __init__(self, *, options: Options | None = None,
                 preconditioner: Any = None,
                 precond_opts: dict[str, Any] | None = None,
                 cache: ShardedSetupCache | None = None,
                 nranks: int = DEFAULT_NRANKS):
        opts = options or Options()
        if cache is None:
            cache = ShardedSetupCache(opts.service_shards,
                                      opts.service_cache_entries)
        super().__init__(options=opts, preconditioner=preconditioner,
                         precond_opts=precond_opts, cache=cache)
        self.nranks = int(nranks)
        self.n_shards = cache.n_shards
        self.now = 0.0
        self._busy_until = [0.0] * self.n_shards
        self._events: list[tuple[float, int, int]] = []  # (time, seq, shard)
        self._event_seq = 0
        self._key_shard: dict[tuple, int] = {}
        self.completed: list[AsyncRequest] = []
        self.rejections: list[AsyncRequest] = []
        self.queue_high_water = [0] * self.n_shards
        self.deadline_misses = 0

    # -- admission -------------------------------------------------------
    def shard_depth(self, shard: int) -> int:
        """Queued (admitted, undispatched) requests on one shard."""
        return sum(len(reqs) for key, reqs in self._queue.items()
                   if self._key_shard[key] == shard)

    def _admit(self, req: AsyncRequest, shard: int) -> str | None:
        """Admission decision: ``None`` admits, else a rejection reason."""
        depth = self.options.service_queue_depth
        if depth and self.shard_depth(shard) >= depth:
            return "queue_full"
        if req.deadline <= self.now:
            return "deadline_unmeetable"
        return None

    # -- submission ------------------------------------------------------
    def _make_async(self, a: Any, b: np.ndarray, *, options, x0,
                    deadline, priority, tenant,
                    shifts=(), mass=None) -> AsyncRequest:
        opts = options or self.options
        rel = opts.service_deadline if deadline is None else deadline
        return self._make_request(
            a, b, options=opts, x0=x0, shifts=shifts, mass=mass,
            cls=AsyncRequest, arrival=self.now,
            # 0 = no deadline; negative = already expired (rejected below)
            deadline=self.now + rel if rel != 0 else math.inf,
            priority=priority, tenant=tenant)

    def _enqueue(self, req: AsyncRequest) -> AsyncRequest:
        shard = self.cache.shard_of(req.fingerprint)
        req.shard = shard
        tr = trace.current()
        reason = self._admit(req, shard)
        if reason is not None:
            req.rejected = reason
            self.rejections.append(req)
            tr.metrics.counter("service_rejected_total").inc(reason=reason)
            return req
        key = self._request_key(req)
        self._queue.setdefault(key, []).append(req)
        self._key_shard[key] = shard
        depth = self.shard_depth(shard)
        self.queue_high_water[shard] = max(self.queue_high_water[shard],
                                           depth)
        tr.metrics.gauge("service_queue_depth").set(depth, shard=str(shard))
        if self.flush_policy != "explicit":
            self._pump(shard, allow_partial=False)
        return req

    def submit(self, a: Any, b: np.ndarray, *,
               options: Options | None = None,
               x0: np.ndarray | None = None,
               deadline: float | None = None, priority: int = 0,
               tenant: str = "default") -> AsyncRequest:
        """Queue one request at the current simulated time.

        ``deadline`` is *relative* to now (``None`` uses
        ``options.service_deadline``; 0 means none).  The returned handle
        either joins a shard queue or comes back with
        :attr:`AsyncRequest.rejected` set — check it before calling
        :meth:`result`.
        """
        return self._enqueue(self._make_async(
            a, b, options=options, x0=x0, deadline=deadline,
            priority=priority, tenant=tenant))

    def submit_family(self, a: Any, b: np.ndarray, shifts, *,
                      mass: Any = None, options: Options | None = None,
                      x0: np.ndarray | None = None,
                      deadline: float | None = None, priority: int = 0,
                      tenant: str = "default") -> AsyncRequest:
        """Queue a shifted-family request under the async scheduler.

        Coalescing, admission, deadlines and cost attribution behave as
        for :meth:`submit`; the family's union of shifts is one dispatch
        on the owning shard (see
        :meth:`~repro.service.service.SolveService.submit_family`).
        """
        sig = tuple(np.ravel(np.asarray(list(shifts))).tolist())
        if not sig:
            raise ValueError("a family request needs at least one shift")
        return self._enqueue(self._make_async(
            a, b, options=options, x0=x0, deadline=deadline,
            priority=priority, tenant=tenant, shifts=sig, mass=mass))

    # -- scheduling core -------------------------------------------------
    def _shard_keys(self, shard: int) -> list[tuple]:
        return [key for key, reqs in self._queue.items()
                if reqs and self._key_shard[key] == shard]

    def _best_key(self, shard: int) -> tuple | None:
        """The coalescing group holding the most urgent queued request."""
        keys = self._shard_keys(shard)
        if not keys:
            return None
        return min(keys,
                   key=lambda k: min(r.urgency() for r in self._queue[k]))

    def _group_width(self, key: tuple) -> int:
        return sum(r.width for r in self._queue[key])

    def _pump(self, shard: int, *, allow_partial: bool) -> bool:
        """Dispatch at most one batch on an idle shard; True if it did.

        With ``allow_partial=False`` (eager path at submit) a batch goes
        out only when a group is full (``service_pmax`` columns), its
        earliest deadline has arrived, or the shard's queue hit its
        admission bound — dispatching on a full queue is what makes the
        bound *backpressure* rather than deadlock, so rejections only
        happen while the shard is genuinely busy.  ``allow_partial=True``
        (completion events, deadline timers, drain) dispatches whatever
        accumulated: that is the pipelining step.
        """
        if self._busy_until[shard] > self.now:
            return False
        key = self._best_key(shard)
        if key is None:
            return False
        group = sorted(self._queue[key], key=AsyncRequest.urgency)
        if not allow_partial:
            head_due = group[0].deadline <= self.now
            bound = self.options.service_queue_depth
            queue_full = bool(bound) and self.shard_depth(shard) >= bound
            if self._group_width(key) < self.p_max \
                    and not head_due and not queue_full:
                return False
        chunk, rest = self._take_chunk(group)
        if rest:
            self._queue[key] = rest
        else:
            del self._queue[key]
            del self._key_shard[key]
        self._dispatch(shard, key, chunk)
        return True

    def _dispatch(self, shard: int, key: tuple,
                  chunk: list[AsyncRequest]) -> None:
        self._solve_batch(key, chunk)
        rec = self.batches[-1]
        duration = float(modeled_time(rec["ledger"], self.nranks,
                                      block_width=rec["width"]).total)
        start = self.now
        end = start + duration
        self._busy_until[shard] = end
        self._event_seq += 1
        heapq.heappush(self._events, (end, self._event_seq, shard))
        rec.update(shard=shard, dispatch_time=start, completion_time=end,
                   modeled_duration=duration)
        tr = trace.current()
        for req in chunk:
            req.dispatch_time = start
            req.completion_time = end
            missed = bool(end > req.deadline)
            if missed:
                self.deadline_misses += 1
                tr.metrics.counter("service_deadline_misses_total").inc(
                    shard=str(shard))
            assert req.result is not None
            req.result.info["service"].update({
                "mode": "async",
                "shard": shard,
                "tenant": req.tenant,
                "priority": req.priority,
                "arrival": req.arrival,
                "dispatch_time": start,
                "completion_time": end,
                "latency": end - req.arrival,
                "deadline": None if math.isinf(req.deadline)
                else req.deadline,
                "deadline_missed": missed,
            })
            self.completed.append(req)
        tr.metrics.gauge("service_queue_depth").set(
            self.shard_depth(shard), shard=str(shard))
        tr.metrics.gauge("service_shard_occupancy").set(
            len(self.cache.shards[shard]), shard=str(shard))

    def _next_deadline(self) -> tuple[float, int]:
        """Earliest queued deadline on an *idle* shard (time, shard).

        Busy shards are excluded: their completion event is already in
        the heap and pumps them the moment they free up.
        """
        best_t, best_s = math.inf, -1
        for key, reqs in self._queue.items():
            shard = self._key_shard[key]
            if self._busy_until[shard] > self.now:
                continue
            for r in reqs:
                if r.deadline < best_t:
                    best_t, best_s = r.deadline, shard
        return best_t, best_s

    # -- the clock -------------------------------------------------------
    def advance_to(self, t: float) -> None:
        """Run the event loop up to simulated time ``t``.

        Processes batch completions (which pipeline the next accumulated
        batch out) and deadline timers (which force partial dispatch of a
        due group on an idle shard) in time order.
        """
        while True:
            ev_t = self._events[0][0] if self._events else math.inf
            dl_t, dl_shard = self._next_deadline()
            nxt = min(ev_t, dl_t)
            if nxt > t:
                break
            self.now = nxt
            if ev_t <= dl_t:
                _, _, shard = heapq.heappop(self._events)
            else:
                shard = dl_shard
            self._pump(shard, allow_partial=True)
        self.now = max(self.now, t)

    def drain(self) -> list[AsyncRequest]:
        """Dispatch everything queued and run the clock until quiescent."""
        while True:
            progressed = False
            for shard in range(self.n_shards):
                while self._pump(shard, allow_partial=True):
                    progressed = True
            if self._events:
                t, _, shard = heapq.heappop(self._events)
                self.now = max(self.now, t)
                progressed = True
            elif not progressed:
                break
        return self.completed

    # -- results ---------------------------------------------------------
    def flush(self) -> list[AsyncRequest]:
        """Alias of :meth:`drain`, matching the synchronous API."""
        return self.drain()

    def result(self, req: SolveRequest) -> SolveResult:
        """The request's result, draining the loop if still in flight."""
        rejected = getattr(req, "rejected", None)
        if rejected is not None:
            raise RuntimeError(
                f"request {req.index} was rejected at admission "
                f"({rejected}); it has no result")
        if not req.done:
            self.drain()
        assert req.result is not None
        return req.result

    @property
    def makespan(self) -> float:
        """Simulated completion time of the last finished batch."""
        return max(self._busy_until, default=0.0)


def make_service(*, options: Options | None = None,
                 **kwargs: Any) -> SolveService:
    """Build the front end selected by ``options.service_mode``.

    ``"sync"`` returns the blocking :class:`SolveService` oracle;
    ``"async"`` returns :class:`AsyncSolveService` (extra keyword
    arguments such as ``nranks`` are only meaningful there).
    """
    opts = options or Options()
    if opts.service_mode == "async":
        return AsyncSolveService(options=opts, **kwargs)
    kwargs.pop("nranks", None)
    return SolveService(options=opts, **kwargs)
