"""Structured tetrahedral meshes with edge/face connectivity.

The Maxwell solver of the paper discretizes the EMTensor imaging chamber
with ~18M tetrahedra meshed by an external generator.  Here a structured
box mesh (each grid cube split into six tetrahedra along the Kuhn
triangulation — globally consistent, no hanging faces) plays that role;
a cylindrical chamber is obtained by masking cells.

The mesh knows everything edge elements need:

* unique global edges with orientation signs per cell;
* unique faces with the cells sharing them (boundary face = one cell);
* per-cell volumes and barycentric gradients (batched).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

__all__ = ["TetMesh", "box_tet_mesh", "cylinder_mask"]

# Kuhn split of the unit cube into 6 tets, via the 8 corner ids
# corners numbered (i, j, k) -> i + 2j + 4k
_KUHN_TETS = np.array([
    [0, 1, 3, 7],
    [0, 1, 5, 7],
    [0, 2, 3, 7],
    [0, 2, 6, 7],
    [0, 4, 5, 7],
    [0, 4, 6, 7],
])

#: local edges of a tet: pairs of local vertex ids
LOCAL_EDGES = np.array([[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]])
#: local faces of a tet: triples of local vertex ids
LOCAL_FACES = np.array([[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]])


@dataclass
class TetMesh:
    """A tetrahedral mesh: points (N, 3) and cells (M, 4)."""

    points: np.ndarray
    cells: np.ndarray

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=float)
        self.cells = np.asarray(self.cells, dtype=np.int64)
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise ValueError("points must be (N, 3)")
        if self.cells.ndim != 2 or self.cells.shape[1] != 4:
            raise ValueError("cells must be (M, 4)")

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return self.points.shape[0]

    @property
    def n_cells(self) -> int:
        return self.cells.shape[0]

    @cached_property
    def edges(self) -> np.ndarray:
        """Unique edges (E, 2) as sorted vertex pairs."""
        return self._edge_data[0]

    @cached_property
    def cell_edges(self) -> np.ndarray:
        """(M, 6) global edge index of each local edge."""
        return self._edge_data[1]

    @cached_property
    def cell_edge_signs(self) -> np.ndarray:
        """(M, 6) +-1: +1 when the local edge runs low->high vertex id."""
        return self._edge_data[2]

    @cached_property
    def _edge_data(self):
        raw = self.cells[:, LOCAL_EDGES]            # (M, 6, 2)
        lo = raw.min(axis=2)
        hi = raw.max(axis=2)
        signs = np.where(raw[:, :, 0] == lo, 1, -1).astype(np.int8)
        pairs = np.stack([lo, hi], axis=2).reshape(-1, 2)
        edges, inverse = np.unique(pairs, axis=0, return_inverse=True)
        cell_edges = inverse.reshape(self.n_cells, 6)
        return edges, cell_edges, signs

    @property
    def n_edges(self) -> int:
        return self.edges.shape[0]

    @cached_property
    def _face_data(self):
        raw = np.sort(self.cells[:, LOCAL_FACES], axis=2)  # (M, 4, 3)
        tris = raw.reshape(-1, 3)
        faces, inverse, counts = np.unique(tris, axis=0, return_inverse=True,
                                           return_counts=True)
        cell_faces = inverse.reshape(self.n_cells, 4)
        return faces, cell_faces, counts

    @cached_property
    def faces(self) -> np.ndarray:
        """Unique faces (F, 3) as sorted vertex triples."""
        return self._face_data[0]

    @cached_property
    def cell_faces(self) -> np.ndarray:
        """(M, 4) global face index of each local face."""
        return self._face_data[1]

    @cached_property
    def boundary_faces(self) -> np.ndarray:
        """Indices of faces owned by exactly one cell."""
        return np.nonzero(self._face_data[2] == 1)[0]

    @cached_property
    def boundary_edges(self) -> np.ndarray:
        """Edges lying on the boundary (edges of boundary faces)."""
        btris = self.faces[self.boundary_faces]     # (Fb, 3)
        pairs = np.concatenate([btris[:, [0, 1]], btris[:, [0, 2]],
                                btris[:, [1, 2]]])
        pairs = np.unique(np.sort(pairs, axis=1), axis=0)
        # match against the global edge table
        edge_key = self.edges[:, 0].astype(np.int64) * self.n_points \
            + self.edges[:, 1]
        pair_key = pairs[:, 0].astype(np.int64) * self.n_points + pairs[:, 1]
        return np.nonzero(np.isin(edge_key, pair_key))[0]

    # ------------------------------------------------------------------
    @cached_property
    def cell_vertices(self) -> np.ndarray:
        """(M, 4, 3) vertex coordinates per cell."""
        return self.points[self.cells]

    @cached_property
    def cell_volumes(self) -> np.ndarray:
        v = self.cell_vertices
        t = v[:, 1:] - v[:, :1]                     # (M, 3, 3)
        return np.abs(np.linalg.det(t)) / 6.0

    @cached_property
    def barycentric_gradients(self) -> np.ndarray:
        """(M, 4, 3) gradients of the barycentric coordinates, per cell."""
        v = self.cell_vertices
        t = (v[:, 1:] - v[:, :1]).transpose(0, 2, 1)  # columns = edge vectors
        tinv = np.linalg.inv(t)                       # (M, 3, 3)
        g = np.empty((self.n_cells, 4, 3))
        g[:, 1:, :] = tinv                            # rows of T^{-1}
        g[:, 0, :] = -tinv.sum(axis=1)
        return g

    @cached_property
    def cell_centroids(self) -> np.ndarray:
        return self.cell_vertices.mean(axis=1)

    @cached_property
    def edge_centers(self) -> np.ndarray:
        return 0.5 * (self.points[self.edges[:, 0]]
                      + self.points[self.edges[:, 1]])

    # ------------------------------------------------------------------
    def extract_cells(self, mask: np.ndarray) -> "TetMesh":
        """Submesh of the cells where ``mask`` is True (nodes renumbered)."""
        mask = np.asarray(mask, dtype=bool)
        cells = self.cells[mask]
        used = np.unique(cells)
        renum = np.full(self.n_points, -1, dtype=np.int64)
        renum[used] = np.arange(used.size)
        return TetMesh(points=self.points[used], cells=renum[cells])

    def locate_cells(self, pts: np.ndarray, *, tol: float = 1e-10) -> np.ndarray:
        """Cell index containing each query point (-1 when outside)."""
        pts = np.atleast_2d(np.asarray(pts, dtype=float))
        out = np.full(pts.shape[0], -1, dtype=np.int64)
        g = self.barycentric_gradients
        v0 = self.cell_vertices[:, 0]
        for qi, p in enumerate(pts):
            lam_rest = np.einsum("mij,mj->mi", g[:, 1:], p - v0)  # (M, 3)
            lam0 = 1.0 - lam_rest.sum(axis=1)
            lam = np.column_stack([lam0, lam_rest])
            inside = np.all(lam >= -tol, axis=1)
            hits = np.nonzero(inside)[0]
            if hits.size:
                out[qi] = hits[0]
        return out

    def barycentric_coordinates(self, cell: int, p: np.ndarray) -> np.ndarray:
        """Barycentric coordinates of point ``p`` in ``cell``."""
        g = self.barycentric_gradients[cell]
        v0 = self.cell_vertices[cell, 0]
        lam_rest = g[1:] @ (np.asarray(p, dtype=float) - v0)
        return np.concatenate([[1.0 - lam_rest.sum()], lam_rest])


def box_tet_mesh(nx: int, ny: int | None = None, nz: int | None = None, *,
                 bounds: tuple[tuple[float, float], ...] = ((0, 1), (0, 1), (0, 1))
                 ) -> TetMesh:
    """Kuhn-triangulated box: ``6 * nx * ny * nz`` tetrahedra.

    >>> m = box_tet_mesh(2)
    >>> m.n_cells
    48
    >>> bool(np.isclose(m.cell_volumes.sum(), 1.0))
    True
    """
    ny = ny or nx
    nz = nz or nx
    xs = np.linspace(*bounds[0], nx + 1)
    ys = np.linspace(*bounds[1], ny + 1)
    zs = np.linspace(*bounds[2], nz + 1)
    gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
    points = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])
    nid = lambda i, j, k: (i * (ny + 1) + j) * (nz + 1) + k  # noqa: E731

    cells = []
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                corner = np.array([nid(i + di, j + dj, k + dk)
                                   for dk in (0, 1) for dj in (0, 1)
                                   for di in (0, 1)])
                # _KUHN_TETS indexes corners as i + 2j + 4k; corner[] above
                # is ordered k-major — remap:
                remap = np.array([0, 1, 2, 3, 4, 5, 6, 7])
                corner_ijk = np.empty(8, dtype=np.int64)
                for ci in range(8):
                    di, dj, dk = ci & 1, (ci >> 1) & 1, (ci >> 2) & 1
                    corner_ijk[ci] = nid(i + di, j + dj, k + dk)
                for tet in _KUHN_TETS:
                    cells.append(corner_ijk[tet])
    return TetMesh(points=points, cells=np.asarray(cells))


def cylinder_mask(mesh: TetMesh, *, center: tuple[float, float] = (0.5, 0.5),
                  radius: float = 0.5, axis: int = 2) -> np.ndarray:
    """True for cells whose centroid lies inside an axis-aligned cylinder."""
    c = mesh.cell_centroids
    plane = [i for i in range(3) if i != axis]
    d2 = ((c[:, plane[0]] - center[0]) ** 2 + (c[:, plane[1]] - center[1]) ** 2)
    return d2 <= radius ** 2
