"""2-D Poisson problem — the analogue of PETSc's ex32 (paper section IV-B).

``-Delta u = f`` on the unit square, five-point finite differences on a
Cartesian grid, homogeneous Dirichlet boundary.  The right-hand side family
is the paper's:

.. math::

    f_i(x, y) = \\frac{1}{\\nu_i}
                e^{-(1-x)^2/\\nu_i} e^{-(1-y)^2/\\nu_i},
    \\qquad \\{\\nu_i\\} = \\{0.1, 10, 0.001, 100\\}

— four successive right-hand sides over one fixed operator, "like one
would have to do when solving a time-dependent problem".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["PoissonProblem", "poisson_2d", "poisson_2d_variable", "PAPER_NUS"]

#: the paper's RHS parameters
PAPER_NUS = (0.1, 10.0, 0.001, 100.0)


@dataclass
class PoissonProblem:
    """Assembled 2-D Poisson problem.

    Attributes
    ----------
    a:
        the five-point stencil matrix (SPD, scaled by 1/h^2).
    points:
        interior grid point coordinates, shape (n, 2).
    nx, ny:
        interior grid dimensions (n = nx * ny).
    """

    a: sp.csr_matrix
    points: np.ndarray
    nx: int
    ny: int

    @property
    def n(self) -> int:
        return self.a.shape[0]

    def rhs(self, nu: float) -> np.ndarray:
        """One column of the paper's RHS family."""
        x, y = self.points[:, 0], self.points[:, 1]
        return (np.exp(-(1 - x) ** 2 / nu) * np.exp(-(1 - y) ** 2 / nu)) / nu

    def rhs_sequence(self, nus=PAPER_NUS) -> list[np.ndarray]:
        """The four successive right-hand sides of section IV-B."""
        return [self.rhs(nu) for nu in nus]

    def rhs_block(self, nus=PAPER_NUS) -> np.ndarray:
        """The same family as an n x p block (for block methods)."""
        return np.column_stack(self.rhs_sequence(nus))


def poisson_2d(nx: int, ny: int | None = None) -> PoissonProblem:
    """Assemble the five-point Poisson matrix on an ``nx x ny`` interior grid.

    >>> prob = poisson_2d(4)
    >>> prob.a.shape
    (16, 16)
    >>> round(float(prob.a[0, 0]), 6)  # 4 / h^2 with h = 1/5
    100.0
    """
    ny = ny or nx
    hx = 1.0 / (nx + 1)
    hy = 1.0 / (ny + 1)
    tx = sp.diags([-np.ones(nx - 1), 2.0 * np.ones(nx), -np.ones(nx - 1)],
                  [-1, 0, 1]) / hx**2
    ty = sp.diags([-np.ones(ny - 1), 2.0 * np.ones(ny), -np.ones(ny - 1)],
                  [-1, 0, 1]) / hy**2
    a = sp.kron(sp.eye(ny), tx) + sp.kron(ty, sp.eye(nx))
    xs = (np.arange(nx) + 1) * hx
    ys = (np.arange(ny) + 1) * hy
    gx, gy = np.meshgrid(xs, ys)
    points = np.column_stack([gx.ravel(), gy.ravel()])
    return PoissonProblem(a=sp.csr_matrix(a), points=points, nx=nx, ny=ny)


def poisson_2d_variable(nx: int, coefficient, ny: int | None = None
                        ) -> PoissonProblem:
    """Variable-coefficient Poisson: ``-div(c(x, y) grad u) = f``.

    Finite volumes with harmonic averaging of ``c`` on cell edges — the
    standard discretization for discontinuous coefficients (high-contrast
    inclusions/channels), which is what makes AMG leave slow modes behind
    and recycling pay off (cf. EXPERIMENTS.md).

    Parameters
    ----------
    nx, ny:
        interior grid dimensions.
    coefficient:
        callable ``c(x, y) -> float`` evaluated at grid points (vectorized
        over arrays), or an ``(nx+2) x (ny+2)`` array on the padded grid.

    >>> prob = poisson_2d_variable(4, lambda x, y: 1.0)
    >>> ref = poisson_2d(4)
    >>> bool(abs(prob.a - ref.a).max() < 1e-10)
    True
    """
    ny = ny or nx
    hx = 1.0 / (nx + 1)
    hy = 1.0 / (ny + 1)
    xs = np.arange(nx + 2) * hx
    ys = np.arange(ny + 2) * hy
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    if callable(coefficient):
        c = np.asarray(coefficient(gx, gy), dtype=float)
        c = np.broadcast_to(c, gx.shape).copy()
    else:
        c = np.asarray(coefficient, dtype=float)
        if c.shape != (nx + 2, ny + 2):
            raise ValueError(f"coefficient array must be {(nx + 2, ny + 2)}, "
                             f"got {c.shape}")
    if np.any(c <= 0):
        raise ValueError("the diffusion coefficient must be positive")

    def harmonic(a, b):
        return 2.0 * a * b / (a + b)

    idx = lambda i, j: (j - 1) * nx + (i - 1)  # noqa: E731
    rows, cols, vals = [], [], []
    for j in range(1, ny + 1):
        for i in range(1, nx + 1):
            k = idx(i, j)
            diag = 0.0
            for di, dj, h2 in ((1, 0, hx**2), (-1, 0, hx**2),
                               (0, 1, hy**2), (0, -1, hy**2)):
                w = harmonic(c[i, j], c[i + di, j + dj]) / h2
                diag += w
                ii, jj = i + di, j + dj
                if 1 <= ii <= nx and 1 <= jj <= ny:
                    rows.append(k)
                    cols.append(idx(ii, jj))
                    vals.append(-w)
            rows.append(k)
            cols.append(k)
            vals.append(diag)
    a = sp.csr_matrix((vals, (rows, cols)), shape=(nx * ny, nx * ny))
    points = np.column_stack([gx[1:-1, 1:-1].ravel(order="F"),
                              gy[1:-1, 1:-1].ravel(order="F")])
    return PoissonProblem(a=a, points=points, nx=nx, ny=ny)
