"""Graph partitioning and overlap growth — the SCOTCH stand-in.

The paper partitions an unstructured mesh with SCOTCH and grows geometric
overlap: ``T_i^delta`` is obtained by including all elements adjacent to
``T_i^{delta-1}`` (section V-A).  Two partitioners are provided:

* **recursive coordinate bisection** (RCB) when point coordinates exist —
  the classic geometric method, clean load balance on meshes;
* **band partition** for pure graphs: split a reverse-Cuthill-McKee
  ordering into contiguous chunks — cheap, and on mesh-like graphs it
  yields connected, low-surface parts.

Overlap growth and partition-of-unity construction are shared by both and
verified against the identity ``sum_i R_i^T D_i R_i = I`` (the algebraic
partition-of-unity requirement of eq. (6)).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..direct.ordering import reverse_cuthill_mckee

__all__ = ["recursive_coordinate_bisection", "band_partition",
           "grow_overlap", "partition_of_unity", "OverlappingDecomposition",
           "decompose"]


def recursive_coordinate_bisection(points: np.ndarray, nparts: int) -> np.ndarray:
    """RCB: recursively split along the widest coordinate axis.

    ``nparts`` need not be a power of two — splits are proportional.
    Returns a part id per point.
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    part = np.zeros(n, dtype=np.int64)

    def _split(idx: np.ndarray, parts: int, base: int) -> None:
        if parts == 1:
            part[idx] = base
            return
        left_parts = parts // 2
        frac = left_parts / parts
        sub = points[idx]
        axis = int(np.argmax(sub.max(axis=0) - sub.min(axis=0)))
        order = np.argsort(sub[:, axis], kind="stable")
        cut = int(round(frac * len(idx)))
        _split(idx[order[:cut]], left_parts, base)
        _split(idx[order[cut:]], parts - left_parts, base + left_parts)

    _split(np.arange(n), nparts, 0)
    return part


def band_partition(a: sp.spmatrix, nparts: int) -> np.ndarray:
    """Partition a matrix graph by chunking its RCM ordering."""
    n = a.shape[0]
    if nparts > n:
        raise ValueError(f"cannot split {n} vertices into {nparts} parts")
    order = reverse_cuthill_mckee(a)
    bounds = np.linspace(0, n, nparts + 1).astype(int)
    part = np.empty(n, dtype=np.int64)
    for p in range(nparts):
        part[order[bounds[p]: bounds[p + 1]]] = p
    return part


def grow_overlap(a: sp.spmatrix, owned: np.ndarray, delta: int) -> np.ndarray:
    """Indices of the ``delta``-overlap subdomain containing ``owned``.

    One layer = all vertices adjacent (in the symmetrized graph of ``a``)
    to the current set, matching the element-layer recursion of the paper.
    """
    pattern = sp.csr_matrix((a != 0).astype(np.int8))
    pattern = ((pattern + pattern.T) > 0).astype(np.int8).tocsr()
    mask = np.zeros(a.shape[0], dtype=bool)
    mask[owned] = True
    for _ in range(delta):
        frontier = pattern[mask].indices
        mask[frontier] = True
    return np.nonzero(mask)[0]


def partition_of_unity(n: int, owned_sets: list[np.ndarray],
                       overlap_sets: list[np.ndarray], *,
                       kind: str = "boolean") -> list[np.ndarray]:
    """Per-subdomain diagonal weights ``D_i`` with ``sum R_i^T D_i R_i = I``.

    * ``"boolean"`` (RAS): weight 1 on owned DOFs, 0 on the overlap;
    * ``"multiplicity"``: weight ``1/multiplicity`` everywhere.
    """
    if kind == "boolean":
        out = []
        for owned, ov in zip(owned_sets, overlap_sets):
            d = np.zeros(len(ov))
            owned_mask = np.isin(ov, owned, assume_unique=True)
            d[owned_mask] = 1.0
            out.append(d)
        return out
    if kind == "multiplicity":
        mult = np.zeros(n)
        for ov in overlap_sets:
            mult[ov] += 1.0
        return [1.0 / mult[ov] for ov in overlap_sets]
    raise ValueError(f"unknown partition-of-unity kind {kind!r}")


class OverlappingDecomposition:
    """An overlapping decomposition of ``n`` DOFs.

    Attributes
    ----------
    owned:
        disjoint index sets covering ``range(n)``.
    overlapping:
        the delta-grown index sets (sorted).
    pou:
        per-subdomain diagonal partition-of-unity weights.
    """

    def __init__(self, n: int, owned: list[np.ndarray],
                 overlapping: list[np.ndarray], pou: list[np.ndarray]):
        self.n = n
        self.owned = owned
        self.overlapping = overlapping
        self.pou = pou

    @property
    def nparts(self) -> int:
        return len(self.owned)

    def check_pou(self) -> float:
        """Max deviation of ``sum R^T D R`` from the identity (should be 0)."""
        acc = np.zeros(self.n)
        for ov, d in zip(self.overlapping, self.pou):
            acc[ov] += d
        return float(np.abs(acc - 1.0).max())


def decompose(a: sp.spmatrix, nparts: int, *, overlap: int = 1,
              points: np.ndarray | None = None,
              pou: str = "boolean") -> OverlappingDecomposition:
    """Partition the graph of ``a`` and grow ``overlap`` layers.

    Uses RCB when ``points`` are supplied, the RCM band partition otherwise.
    """
    n = a.shape[0]
    if points is not None:
        part = recursive_coordinate_bisection(points, nparts)
    else:
        part = band_partition(a, nparts)
    owned = [np.nonzero(part == p)[0] for p in range(nparts)]
    if any(len(o) == 0 for o in owned):
        raise ValueError("empty subdomain produced; reduce nparts")
    overlapping = [grow_overlap(a, o, overlap) for o in owned]
    weights = partition_of_unity(n, owned, overlapping, kind=pou)
    return OverlappingDecomposition(n, owned, overlapping, weights)
