"""Time-harmonic Maxwell on lowest-order Nédélec (edge) elements — §V.

The paper's driving application: the EMTensor brain-imaging chamber, where

.. math::

    \\nabla\\times(\\nabla\\times E) - \\mu_0(\\omega^2\\varepsilon
        + i\\omega\\sigma) E = 0

is discretized with curl-conforming edge elements, yielding ill-conditioned
*indefinite complex* systems with 32+ right-hand sides (one per transmitting
antenna).  This module builds, from scratch:

* batched element matrices for the Whitney edge basis
  ``w_{ij} = lambda_i grad(lambda_j) - lambda_j grad(lambda_i)``:
  curl-curl stiffness and (complex-weighted) mass;
* PEC boundary conditions (tangential E eliminated on the chamber wall);
* antenna excitations: point dipoles on rings, one RHS per antenna;
* the heterogeneous chamber phantom (matching solution, optional plastic
  cylinder inclusion — the "more difficult test case" of section V-C);
* per-subdomain local operators with **impedance (optimized) transmission
  conditions** ``B_i = K_i - omega^2 eps M_i - i omega eta T_i`` where
  ``T_i`` is the tangential-trace mass on interface faces — the ORAS
  ingredient of eq. (6), vs the plain Neumann matrices of ASM/RAS.

Units are normalized (mu_0 = 1, chamber diameter ~ 1) so that meaningful
wave counts fit laptop-sized meshes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..problems.partition import (OverlappingDecomposition,
                                  recursive_coordinate_bisection)
from ..util import ledger
from .tetmesh import LOCAL_EDGES, TetMesh, box_tet_mesh, cylinder_mask

__all__ = ["edge_element_matrices", "MaxwellProblem", "assemble_maxwell",
           "chamber_phantom", "antenna_ring_rhs", "maxwell_chamber",
           "MaxwellDecomposition", "decompose_maxwell"]


# ---------------------------------------------------------------------------
# element matrices
# ---------------------------------------------------------------------------
def edge_element_matrices(mesh: TetMesh) -> tuple[np.ndarray, np.ndarray]:
    """Batched curl-curl (K_e) and mass (M_e) element matrices, (M, 6, 6).

    Orientation signs are already folded in, so assembly is a plain
    scatter-add over ``mesh.cell_edges``.
    """
    g = mesh.barycentric_gradients              # (M, 4, 3)
    vol = mesh.cell_volumes                     # (M,)
    signs = mesh.cell_edge_signs.astype(float)  # (M, 6)

    ia = LOCAL_EDGES[:, 0]
    ja = LOCAL_EDGES[:, 1]
    # curl w_(ij) = 2 grad(lambda_i) x grad(lambda_j)
    curls = 2.0 * np.cross(g[:, ia, :], g[:, ja, :])          # (M, 6, 3)
    ke = vol[:, None, None] * np.einsum("mak,mbk->mab", curls, curls)

    d = np.einsum("mik,mjk->mij", g, g)                        # (M, 4, 4)
    delta = np.eye(4)
    me = np.empty_like(ke)
    for a in range(6):
        i_a, j_a = LOCAL_EDGES[a]
        for b in range(6):
            i_b, j_b = LOCAL_EDGES[b]
            me[:, a, b] = (
                (1 + delta[i_a, i_b]) * d[:, j_a, j_b]
                - (1 + delta[i_a, j_b]) * d[:, j_a, i_b]
                - (1 + delta[j_a, i_b]) * d[:, i_a, j_b]
                + (1 + delta[j_a, j_b]) * d[:, i_a, i_b])
    me *= vol[:, None, None] / 20.0

    ss = signs[:, :, None] * signs[:, None, :]
    return ke * ss, me * ss


def _scatter_assemble(mesh: TetMesh, elem: np.ndarray,
                      cell_mask: np.ndarray | None = None) -> sp.csr_matrix:
    """Assemble (M, 6, 6) element matrices into the global edge matrix."""
    ce = mesh.cell_edges
    if cell_mask is not None:
        ce = ce[cell_mask]
        elem = elem[cell_mask]
    rows = np.repeat(ce, 6, axis=1).ravel()
    cols = np.tile(ce, (1, 6)).ravel()
    n = mesh.n_edges
    return sp.csr_matrix((elem.ravel(), (rows, cols)), shape=(n, n))


# ---------------------------------------------------------------------------
# the global problem
# ---------------------------------------------------------------------------
@dataclass
class MaxwellProblem:
    """Assembled time-harmonic Maxwell system with PEC walls eliminated."""

    mesh: TetMesh
    omega: float
    eps: np.ndarray                 # per-cell relative permittivity (real)
    sigma: np.ndarray               # per-cell conductivity
    a: sp.csr_matrix                # reduced system (free edges only)
    free_edges: np.ndarray          # global edge ids of the free DOFs
    edge_to_dof: np.ndarray         # global edge id -> reduced dof (-1 fixed)
    elem_k: np.ndarray = field(repr=False)   # (M, 6, 6) element stiffness
    elem_m: np.ndarray = field(repr=False)   # (M, 6, 6) element mass

    @property
    def n(self) -> int:
        return self.a.shape[0]

    def cell_weight(self) -> np.ndarray:
        """Complex material factor ``omega^2 (eps + i sigma / omega)``."""
        return self.omega ** 2 * (self.eps + 1j * self.sigma / self.omega)

    def reduce_rhs(self, b_full: np.ndarray) -> np.ndarray:
        return b_full[self.free_edges]

    def dof_points(self) -> np.ndarray:
        """Edge midpoints of the free DOFs (for geometric partitioning)."""
        return self.mesh.edge_centers[self.free_edges]


def assemble_maxwell(mesh: TetMesh, *, omega: float,
                     eps: np.ndarray | float = 1.0,
                     sigma: np.ndarray | float = 0.0) -> MaxwellProblem:
    """Assemble ``K - omega^2 (eps + i sigma/omega) M`` with PEC walls."""
    eps = np.broadcast_to(np.asarray(eps, dtype=float), (mesh.n_cells,)).copy()
    sigma = np.broadcast_to(np.asarray(sigma, dtype=float), (mesh.n_cells,)).copy()
    led = ledger.current()
    with led.timer("maxwell_assembly"):
        ke, me = edge_element_matrices(mesh)
        weight = omega ** 2 * (eps + 1j * sigma / omega)
        elem = ke.astype(np.complex128) - weight[:, None, None] * me
        a_full = _scatter_assemble(mesh, elem)
        fixed = mesh.boundary_edges
        free = np.setdiff1d(np.arange(mesh.n_edges), fixed)
        edge_to_dof = np.full(mesh.n_edges, -1, dtype=np.int64)
        edge_to_dof[free] = np.arange(free.size)
        a = sp.csr_matrix(a_full[free][:, free])
    led.event("maxwell_assembled")
    return MaxwellProblem(mesh=mesh, omega=omega, eps=eps, sigma=sigma,
                          a=a, free_edges=free, edge_to_dof=edge_to_dof,
                          elem_k=ke, elem_m=me)


# ---------------------------------------------------------------------------
# phantom and excitations
# ---------------------------------------------------------------------------
def chamber_phantom(mesh: TetMesh, *,
                    eps_background: float = 2.0,
                    sigma_background: float = 1.0,
                    inclusion_radius: float = 0.0,
                    inclusion_center: tuple[float, float] = (0.5, 0.5),
                    eps_inclusion: float = 1.0,
                    sigma_inclusion: float = 0.0
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell (eps, sigma) for the imaging chamber.

    Background = dissipative *matching solution* (the strong-scaling test
    case of Fig. 7); a non-zero ``inclusion_radius`` immerses the
    non-dissipative plastic cylinder of section V-C.
    """
    eps = np.full(mesh.n_cells, eps_background)
    sigma = np.full(mesh.n_cells, sigma_background)
    if inclusion_radius > 0:
        mask = cylinder_mask(mesh, center=inclusion_center,
                             radius=inclusion_radius)
        eps[mask] = eps_inclusion
        sigma[mask] = sigma_inclusion
    return eps, sigma


def antenna_ring_rhs(problem: MaxwellProblem, *, n_antennas: int = 32,
                     ring_z: float = 0.5, radius: float = 0.35,
                     center: tuple[float, float] = (0.5, 0.5),
                     direction: str = "vertical",
                     amplitude: float = 1.0) -> np.ndarray:
    """One RHS column per antenna of a ring (the EMTensor geometry, §V-A).

    Each antenna is a point dipole at angle ``2 pi a / n_antennas`` on the
    ring; ``direction`` "vertical" excites E_z, "tangential" excites the
    azimuthal component.  Returns the reduced (free-DOF) ``n x p`` block.
    """
    mesh = problem.mesh
    angles = 2 * np.pi * np.arange(n_antennas) / n_antennas
    pos = np.column_stack([center[0] + radius * np.cos(angles),
                           center[1] + radius * np.sin(angles),
                           np.full(n_antennas, ring_z)])
    cells = mesh.locate_cells(pos)
    b_full = np.zeros((mesh.n_edges, n_antennas), dtype=np.complex128)
    for col, (p, cell, th) in enumerate(zip(pos, cells, angles)):
        if cell < 0:
            raise ValueError(f"antenna {col} at {p} lies outside the mesh")
        if direction == "vertical":
            d = np.array([0.0, 0.0, 1.0])
        elif direction == "tangential":
            d = np.array([-np.sin(th), np.cos(th), 0.0])
        else:
            raise ValueError(f"unknown antenna direction {direction!r}")
        lam = mesh.barycentric_coordinates(int(cell), p)
        g = mesh.barycentric_gradients[cell]
        for a in range(6):
            i_a, j_a = LOCAL_EDGES[a]
            w = lam[i_a] * g[j_a] - lam[j_a] * g[i_a]
            sign = mesh.cell_edge_signs[cell, a]
            edge = mesh.cell_edges[cell, a]
            # i omega J source term
            b_full[edge, col] += 1j * problem.omega * amplitude * sign * (w @ d)
    return problem.reduce_rhs(b_full)


def maxwell_chamber(n: int = 8, *, omega: float = 12.0,
                    cylinder: bool = True,
                    inclusion_radius: float = 0.0,
                    eps_background: float = 2.0,
                    sigma_background: float = 1.0) -> MaxwellProblem:
    """Convenience builder: meshed chamber + phantom + assembly.

    ``n`` is the grid resolution per axis (cells before cylinder masking);
    ``omega`` the normalized angular frequency (keep ``omega * h < ~1``).
    """
    mesh = box_tet_mesh(n)
    if cylinder:
        mesh = mesh.extract_cells(cylinder_mask(mesh, radius=0.5))
    eps, sigma = chamber_phantom(mesh, eps_background=eps_background,
                                 sigma_background=sigma_background,
                                 inclusion_radius=inclusion_radius)
    return assemble_maxwell(mesh, omega=omega, eps=eps, sigma=sigma)


# ---------------------------------------------------------------------------
# domain decomposition with impedance transmission conditions
# ---------------------------------------------------------------------------
@dataclass
class MaxwellDecomposition:
    """Cell-based overlapping decomposition + ORAS local matrices."""

    decomposition: OverlappingDecomposition      # on reduced DOFs
    local_matrices: list[sp.csc_matrix]
    cell_parts: np.ndarray
    overlap_cells: list[np.ndarray]


def _face_trace_mass(points: np.ndarray, tri: np.ndarray) -> np.ndarray:
    """3x3 tangential-trace mass matrix of a face's three edges.

    The trace of the 3-D Whitney edge function on a face equals the 2-D
    Whitney function of the triangle; its mass matrix uses the in-plane
    barycentric gradients and ``int lambda_i lambda_j = |F|(1+delta)/12``.
    Edges are ordered ``(0,1), (0,2), (1,2)`` in sorted-vertex convention.
    """
    p0, p1, p2 = points[tri]
    u = p1 - p0
    v = p2 - p0
    gram = np.array([[u @ u, u @ v], [v @ u, v @ v]])
    area = 0.5 * np.sqrt(max(np.linalg.det(gram), 0.0))
    gi = np.linalg.solve(gram, np.eye(2))
    g1 = gi[0, 0] * u + gi[0, 1] * v
    g2 = gi[1, 0] * u + gi[1, 1] * v
    g = np.array([-(g1 + g2), g1, g2])
    d = g @ g.T
    local_edges = np.array([[0, 1], [0, 2], [1, 2]])
    delta = np.eye(3)
    m = np.empty((3, 3))
    for a in range(3):
        i_a, j_a = local_edges[a]
        for b in range(3):
            i_b, j_b = local_edges[b]
            m[a, b] = ((1 + delta[i_a, i_b]) * d[j_a, j_b]
                       - (1 + delta[i_a, j_b]) * d[j_a, i_b]
                       - (1 + delta[j_a, i_b]) * d[i_a, j_b]
                       + (1 + delta[j_a, j_b]) * d[i_a, i_b])
    return m * area / 12.0


def decompose_maxwell(problem: MaxwellProblem, nparts: int, *,
                      overlap: int = 2, impedance: bool = True,
                      eta: float | None = None) -> MaxwellDecomposition:
    """Partition the chamber into subdomains and build ORAS local operators.

    * cells are split by RCB on centroids (the SCOTCH stand-in) and grown
      by ``overlap`` layers of node-adjacent elements (paper's delta);
    * local matrices assemble the *subdomain* element contributions
      (natural/Neumann on the interface) and, when ``impedance`` is set,
      add the first-order absorbing term ``- i omega eta T`` on interface
      faces — the optimized transmission condition of eq. (6);
    * the partition of unity is multiplicity-based on the overlapping edge
      sets, so ``sum R^T D R = I`` holds exactly.
    """
    mesh = problem.mesh
    cell_parts = recursive_coordinate_bisection(mesh.cell_centroids, nparts)
    led = ledger.current()

    # node -> cells adjacency for overlap growth
    n_cells = mesh.n_cells
    cells_of_node: dict[int, list[int]] = {}
    for c in range(n_cells):
        for v in mesh.cells[c]:
            cells_of_node.setdefault(int(v), []).append(c)

    overlap_cells: list[np.ndarray] = []
    for part in range(nparts):
        mask = cell_parts == part
        for _ in range(overlap):
            nodes = np.unique(mesh.cells[mask])
            grown = mask.copy()
            for v in nodes:
                grown[cells_of_node[int(v)]] = True
            mask = grown
        overlap_cells.append(np.nonzero(mask)[0])

    if eta is None:
        eta = float(np.sqrt(np.mean(problem.eps)))

    weight = problem.cell_weight()
    elem = problem.elem_k.astype(np.complex128) \
        - weight[:, None, None] * problem.elem_m

    # precompute edge keys for face-edge lookup
    n_pts = mesh.n_points
    edge_key = mesh.edges[:, 0].astype(np.int64) * n_pts + mesh.edges[:, 1]
    key_order = np.argsort(edge_key)
    sorted_keys = edge_key[key_order]

    def find_edge(a: int, b: int) -> int:
        lo, hi = (a, b) if a < b else (b, a)
        key = lo * n_pts + hi
        pos = np.searchsorted(sorted_keys, key)
        return int(key_order[pos])

    owned_sets: list[np.ndarray] = []
    overlapping_sets: list[np.ndarray] = []
    local_mats: list[sp.csc_matrix] = []

    # ownership of a free DOF: the part of the lowest-id cell touching it
    edge_owner = np.full(mesh.n_edges, -1, dtype=np.int64)
    for c in range(n_cells):
        for e in mesh.cell_edges[c]:
            if edge_owner[e] < 0:
                edge_owner[e] = cell_parts[c]

    with led.timer("oras_setup"):
        for part in range(nparts):
            cells = overlap_cells[part]
            # free edges of the subdomain, in reduced numbering
            sub_edges = np.unique(mesh.cell_edges[cells])
            sub_dofs_full = problem.edge_to_dof[sub_edges]
            keep = sub_dofs_full >= 0
            sub_edges = sub_edges[keep]
            sub_dofs = sub_dofs_full[keep]
            order = np.argsort(sub_dofs)
            sub_edges = sub_edges[order]
            sub_dofs = sub_dofs[order]
            # local index of each global edge
            local_of_edge = {int(e): i for i, e in enumerate(sub_edges)}

            # assemble subdomain (Neumann) matrix
            mask = np.zeros(n_cells, dtype=bool)
            mask[cells] = True
            a_local = _scatter_assemble(mesh, elem, cell_mask=mask)
            a_local = sp.csc_matrix(a_local[sub_edges][:, sub_edges])

            if impedance:
                # interface faces: owned by one in-cell and one out-cell
                face_cells: dict[int, list[int]] = {}
                for c in cells:
                    for f in mesh.cell_faces[c]:
                        face_cells.setdefault(int(f), []).append(c)
                rows, cols, vals = [], [], []
                boundary_set = set(mesh.boundary_faces.tolist())
                for f, owners in face_cells.items():
                    if len(owners) != 1 or f in boundary_set:
                        continue  # interior to the subdomain, or chamber wall
                    tri = mesh.faces[f]
                    mloc = _face_trace_mass(mesh.points, tri)
                    eids = [find_edge(tri[0], tri[1]),
                            find_edge(tri[0], tri[2]),
                            find_edge(tri[1], tri[2])]
                    lids = [local_of_edge.get(e, -1) for e in eids]
                    sgns = [1.0 if mesh.edges[e][0] == lo else -1.0
                            for e, lo in zip(
                                eids, [min(tri[0], tri[1]),
                                       min(tri[0], tri[2]),
                                       min(tri[1], tri[2])])]
                    for ai in range(3):
                        if lids[ai] < 0:
                            continue
                        for bi in range(3):
                            if lids[bi] < 0:
                                continue
                            rows.append(lids[ai])
                            cols.append(lids[bi])
                            vals.append(mloc[ai, bi] * sgns[ai] * sgns[bi])
                if rows:
                    t = sp.csc_matrix(
                        (np.asarray(vals), (rows, cols)),
                        shape=a_local.shape)
                    a_local = a_local - 1j * problem.omega * eta * t
            local_mats.append(sp.csc_matrix(a_local))

            overlapping_sets.append(sub_dofs)
            owned_mask = edge_owner[sub_edges] == part
            owned_sets.append(sub_dofs[owned_mask])

    # multiplicity partition of unity on the overlapping sets
    mult = np.zeros(problem.n)
    for s in overlapping_sets:
        mult[s] += 1.0
    pou = [1.0 / mult[s] for s in overlapping_sets]
    dec = OverlappingDecomposition(problem.n, owned_sets, overlapping_sets, pou)
    return MaxwellDecomposition(decomposition=dec, local_matrices=local_mats,
                                cell_parts=cell_parts,
                                overlap_cells=overlap_cells)
