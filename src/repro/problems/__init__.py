"""PDE problem generators: Poisson, elasticity, heat, Maxwell, partitioning."""

from .elasticity import (PAPER_INCLUSIONS, ElasticityProblem, Inclusion,
                         elasticity_3d, rigid_body_modes)
from .heat import ImplicitHeat
from .maxwell import (MaxwellProblem, antenna_ring_rhs, assemble_maxwell,
                      chamber_phantom, decompose_maxwell, maxwell_chamber)
from .partition import OverlappingDecomposition, decompose
from .poisson import (PAPER_NUS, PoissonProblem, poisson_2d,
                      poisson_2d_variable)
from .tetmesh import TetMesh, box_tet_mesh, cylinder_mask
from .transient import HeatSequence, MaxwellRampSequence, SequenceStep

__all__ = [
    "PoissonProblem",
    "poisson_2d",
    "poisson_2d_variable",
    "PAPER_NUS",
    "ElasticityProblem",
    "elasticity_3d",
    "Inclusion",
    "PAPER_INCLUSIONS",
    "rigid_body_modes",
    "ImplicitHeat",
    "TetMesh",
    "box_tet_mesh",
    "cylinder_mask",
    "MaxwellProblem",
    "assemble_maxwell",
    "maxwell_chamber",
    "chamber_phantom",
    "antenna_ring_rhs",
    "decompose_maxwell",
    "OverlappingDecomposition",
    "decompose",
    "SequenceStep",
    "HeatSequence",
    "MaxwellRampSequence",
]
