"""Implicit heat equation — the paper's motivating sequence (eq. 4).

Section III-B motivates the same-system fast path with time-dependent
PDEs: "for some time-dependent PDEs, it is necessary to solve sequences of
linear systems where the operator is the same throughout the sequence, and
only the right-hand sides are varying.  E.g., when solving the heat
equation implicitly: du/dt - Delta u = f".

:class:`ImplicitHeat` is that driver: backward-Euler (or Crank-Nicolson)
time stepping on the 2-D Poisson operator, producing one linear solve per
step with a *fixed* operator ``I/dt + theta A`` — the natural customer of
``Solver`` + ``-hpddm_recycle_same_system``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..api import Solver
from ..krylov.base import SolveResult
from ..util.options import Options
from .poisson import PoissonProblem, poisson_2d

__all__ = ["ImplicitHeat"]


class ImplicitHeat:
    """Backward-Euler / Crank-Nicolson stepping of ``du/dt - Delta u = f``.

    Parameters
    ----------
    problem:
        a :class:`PoissonProblem` (the spatial operator), or ``None`` to
        build one with ``nx`` interior points per side.
    dt:
        time step.
    theta:
        implicitness: 1.0 = backward Euler, 0.5 = Crank-Nicolson.
    source:
        ``f(points, t) -> ndarray`` source term (defaults to the paper's
        nu-family pulse cycling through its four parameters).
    solver_options:
        Krylov options for the per-step solves; defaults to
        GCRO-DR(30,10) with the same-system fast path — the paper's
        recommended configuration for exactly this workload.
    """

    def __init__(self, problem: PoissonProblem | None = None, *,
                 nx: int = 32, dt: float = 1e-3, theta: float = 1.0,
                 source: Callable[[np.ndarray, float], np.ndarray] | None = None,
                 m=None,
                 solver_options: Options | None = None):
        if not 0.0 < theta <= 1.0:
            raise ValueError("theta must lie in (0, 1]")
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.problem = problem if problem is not None else poisson_2d(nx)
        self.dt = float(dt)
        self.theta = float(theta)
        a = self.problem.a
        n = self.problem.n
        eye = sp.eye(n, format="csr")
        #: the fixed implicit operator I/dt + theta A
        self.lhs = sp.csr_matrix(eye / dt + theta * a)
        self._rhs_op = sp.csr_matrix(eye / dt - (1.0 - theta) * a)
        self.source = source if source is not None else self._paper_source
        opts = solver_options or Options(
            krylov_method="gcrodr", gmres_restart=30, recycle=10,
            tol=1e-8, max_it=20000, recycle_same_system=True)
        self.solver = Solver(m, options=opts)
        self.t = 0.0
        self.u = np.zeros(n)
        self.results: list[SolveResult] = []

    # ------------------------------------------------------------------
    def _paper_source(self, points: np.ndarray, t: float) -> np.ndarray:
        from .poisson import PAPER_NUS
        nu = PAPER_NUS[int(round(t / self.dt)) % len(PAPER_NUS)]
        x, y = points[:, 0], points[:, 1]
        return (np.exp(-(1 - x) ** 2 / nu) * np.exp(-(1 - y) ** 2 / nu)) / nu

    def step(self) -> SolveResult:
        """Advance one time step (one linear solve, recycled subspace)."""
        f = self.source(self.problem.points, self.t + self.dt)
        rhs = self._rhs_op @ self.u + f
        res = self.solver.solve(self.lhs, rhs)
        if not res.converged.all():
            raise RuntimeError(f"heat step at t={self.t + self.dt:g} did "
                               f"not converge ({res.iterations} iterations)")
        self.u = res.x.copy()
        self.t += self.dt
        self.results.append(res)
        return res

    def run(self, n_steps: int) -> np.ndarray:
        """Advance ``n_steps`` steps; returns the final temperature field."""
        for _ in range(n_steps):
            self.step()
        return self.u

    # ------------------------------------------------------------------
    @property
    def iterations_per_step(self) -> list[int]:
        return [r.iterations for r in self.results]

    @property
    def total_iterations(self) -> int:
        return sum(self.iterations_per_step)

    def energy(self) -> float:
        """Discrete L2 norm of the current field (decays without source)."""
        h2 = 1.0 / ((self.problem.nx + 1) * (self.problem.ny + 1))
        return float(np.sqrt(h2) * np.linalg.norm(self.u))
