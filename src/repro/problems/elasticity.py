"""3-D linear elasticity on the unit cube — PETSc's ex56 analogue (§IV-C).

Displacement formulation ``-div(sigma) = f`` discretized with trilinear
(Q1) hexahedral elements on a uniform ``ne x ne x ne`` grid, clamped at the
``z = 0`` face.  The paper's sequence of four *varying* systems comes from
a small moving spherical inclusion

.. math::  (x - x_i)^2 + (y - y_i)^2 + (z - z_i)^2 < r_i^2

inside which the Young modulus is softened/hardened to ``E / s_i``, with
the parameter sets (section IV-C):

    s = {30, 0.1, 20, 10},  r = {0.5, 0.45, 0.4, 0.35},
    x = {0.5, 0.4, 0.4, 0.4}, y = {0.5, 0.5, 0.4, 0.4},
    z = {0.5, 0.45, 0.4, 0.35}.

Six rigid-body modes are provided as the AMG near-nullspace, mirroring
``-pc_gamg`` + ``MatNullSpaceCreateRigidBody``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["ElasticityProblem", "elasticity_3d", "PAPER_INCLUSIONS",
           "Inclusion", "rigid_body_modes"]


@dataclass(frozen=True)
class Inclusion:
    """Spherical soft/hard inclusion: E -> E / s inside the sphere."""

    s: float
    r: float
    x: float
    y: float
    z: float

    def contains(self, centroids: np.ndarray) -> np.ndarray:
        d2 = ((centroids[:, 0] - self.x) ** 2
              + (centroids[:, 1] - self.y) ** 2
              + (centroids[:, 2] - self.z) ** 2)
        return d2 < self.r ** 2


#: the paper's four parameter sets (section IV-C)
PAPER_INCLUSIONS = (
    Inclusion(s=30.0, r=0.5, x=0.5, y=0.5, z=0.5),
    Inclusion(s=0.1, r=0.45, x=0.4, y=0.5, z=0.45),
    Inclusion(s=20.0, r=0.4, x=0.4, y=0.4, z=0.4),
    Inclusion(s=10.0, r=0.35, x=0.4, y=0.4, z=0.35),
)


def _hex_reference_stiffness(h: float, poisson: float) -> np.ndarray:
    """24 x 24 Q1 element stiffness for E = 1 on a cube of side ``h``."""
    # isotropic elasticity matrix (Voigt), E = 1
    nu = poisson
    c = 1.0 / ((1 + nu) * (1 - 2 * nu))
    d = np.zeros((6, 6))
    d[:3, :3] = nu * c
    np.fill_diagonal(d[:3, :3], (1 - nu) * c)
    d[3:, 3:] = np.eye(3) * (1 - 2 * nu) * c / 2.0
    # 2x2x2 Gauss quadrature on [-1, 1]^3
    g = 1.0 / np.sqrt(3.0)
    pts = np.array([[sx * g, sy * g, sz * g]
                    for sx in (-1, 1) for sy in (-1, 1) for sz in (-1, 1)])
    # node order: (i, j, k) with x fastest
    corners = np.array([[sx, sy, sz]
                        for sz in (-1, 1) for sy in (-1, 1) for sx in (-1, 1)])
    ke = np.zeros((24, 24))
    jac = h / 2.0
    detj = jac ** 3
    for xi, eta, zeta in pts:
        dn = np.zeros((8, 3))   # shape gradients in reference coords
        for a in range(8):
            sx, sy, sz = corners[a]
            dn[a, 0] = sx * (1 + sy * eta) * (1 + sz * zeta) / 8.0
            dn[a, 1] = sy * (1 + sx * xi) * (1 + sz * zeta) / 8.0
            dn[a, 2] = sz * (1 + sx * xi) * (1 + sy * eta) / 8.0
        dn = dn / jac           # physical gradients
        b = np.zeros((6, 24))
        for a in range(8):
            bx, by, bz = dn[a]
            col = 3 * a
            b[0, col] = bx
            b[1, col + 1] = by
            b[2, col + 2] = bz
            b[3, col] = by
            b[3, col + 1] = bx
            b[4, col + 1] = bz
            b[4, col + 2] = by
            b[5, col] = bz
            b[5, col + 2] = bx
        ke += b.T @ d @ b * detj
    return ke


def rigid_body_modes(points: np.ndarray) -> np.ndarray:
    """The six rigid-body modes of a 3-D elastic body, one block per node.

    Returns an array of shape (3 * n_nodes, 6): three translations and
    three infinitesimal rotations about the domain centroid.
    """
    pts = np.asarray(points, dtype=float)
    c = pts.mean(axis=0)
    x, y, z = (pts - c).T
    n = pts.shape[0]
    modes = np.zeros((3 * n, 6))
    modes[0::3, 0] = 1.0
    modes[1::3, 1] = 1.0
    modes[2::3, 2] = 1.0
    # rotation about x: (0, -z, y); y: (z, 0, -x); z: (-y, x, 0)
    modes[1::3, 3] = -z
    modes[2::3, 3] = y
    modes[0::3, 4] = z
    modes[2::3, 4] = -x
    modes[0::3, 5] = -y
    modes[1::3, 5] = x
    return modes


@dataclass
class ElasticityProblem:
    """Assembled elasticity system (Dirichlet DOFs eliminated)."""

    a: sp.csr_matrix
    rhs_vector: np.ndarray
    points: np.ndarray              # free-node coordinates (one per node)
    nullspace: np.ndarray           # rigid-body modes on free DOFs (n x 6)
    free_dofs: np.ndarray
    ne: int

    @property
    def n(self) -> int:
        return self.a.shape[0]

    @property
    def block_size(self) -> int:
        return 3


def elasticity_3d(ne: int, *, inclusion: Inclusion | None = None,
                  young: float = 1.0, poisson: float = 0.3,
                  body_force: tuple[float, float, float] = (0.0, 0.0, -1.0)
                  ) -> ElasticityProblem:
    """Assemble the elasticity system on an ``ne^3``-element unit cube.

    ``inclusion`` softens/hardens the Young modulus inside a sphere —
    passing the four :data:`PAPER_INCLUSIONS` one at a time generates the
    paper's sequence of four varying operators.
    """
    if ne < 2:
        raise ValueError("ne must be >= 2")
    h = 1.0 / ne
    nn = ne + 1
    # node (i, j, k) -> index with x fastest
    node_id = lambda i, j, k: i + nn * (j + nn * k)  # noqa: E731
    coords = np.array([[i * h, j * h, k * h]
                       for k in range(nn) for j in range(nn) for i in range(nn)])

    ke_ref = _hex_reference_stiffness(h, poisson)

    # per-element Young modulus
    cell_ids = np.array([(i, j, k)
                         for k in range(ne) for j in range(ne) for i in range(ne)])
    centroids = (cell_ids + 0.5) * h
    e_vals = np.full(len(cell_ids), young)
    if inclusion is not None:
        e_vals[inclusion.contains(centroids)] = young / inclusion.s

    # element -> 24 global DOFs
    n_elem = len(cell_ids)
    conn = np.empty((n_elem, 8), dtype=np.int64)
    for e, (i, j, k) in enumerate(cell_ids):
        conn[e] = [node_id(i + di, j + dj, k + dk)
                   for dk in (0, 1) for dj in (0, 1) for di in (0, 1)]
    dofs = (3 * conn[:, :, None] + np.arange(3)[None, None, :]).reshape(n_elem, 24)

    rows = np.repeat(dofs, 24, axis=1).ravel()
    cols = np.tile(dofs, (1, 24)).ravel()
    vals = (e_vals[:, None] * ke_ref.ravel()[None, :]).ravel()
    ndof = 3 * nn ** 3
    k_full = sp.csr_matrix((vals, (rows, cols)), shape=(ndof, ndof))

    # clamp the z = 0 face
    fixed_nodes = np.nonzero(coords[:, 2] == 0.0)[0]
    fixed = (3 * fixed_nodes[:, None] + np.arange(3)).ravel()
    free = np.setdiff1d(np.arange(ndof), fixed)
    a = sp.csr_matrix(k_full[free][:, free])

    # lumped body force
    f_full = np.zeros(ndof)
    lump = h ** 3
    counts = np.bincount(conn.ravel(), minlength=nn ** 3) / 8.0
    for c_ax in range(3):
        f_full[c_ax::3] = body_force[c_ax] * lump * counts
    rhs = f_full[free]

    free_nodes = np.unique(free // 3)
    ns_full = rigid_body_modes(coords)
    nullspace = ns_full[free]
    return ElasticityProblem(a=a, rhs_vector=rhs, points=coords[free_nodes],
                             nullspace=nullspace, free_dofs=free, ne=ne)
