"""Transient operator/RHS sequences — the macro workload of the paper.

Section III-B's same-system fast path, the setup cache, recycled
subspaces, and the shifted-family engine all pay off on the *sequences*
that implicit time stepping produces: hundreds of solves where the
operator is constant for a while, then changes (adaptive ``dt``, a
frequency ramp), then is constant again.  This module emits those
sequences as first-class objects so the service layer
(:class:`repro.service.SequenceDriver`) can drive them through every
reuse tier in one scenario.

Two concrete sequences:

:class:`HeatSequence`
    backward-Euler / Crank-Nicolson stepping of ``du/dt - Delta u = f``
    (the algebra of :class:`repro.problems.heat.ImplicitHeat`) under an
    adaptive-``dt`` schedule ``dt_e = dt0 * growth**e`` that changes the
    operator fingerprint every ``epoch_length`` steps.  The implicit
    operator ``theta A + (1/dt) I`` is an identity-mass shift of the
    fixed base ``theta A``, so a ``dt`` ramp is also expressible as a
    shifted family (``sequence_mode="shifted"``).

:class:`MaxwellRampSequence`
    a lossless (``sigma = 0``) time-harmonic Maxwell frequency ramp
    ``K - omega_e^2 M_eps`` over the imaging chamber of
    :mod:`repro.problems.maxwell` — the EMTensor imaging workflow sweeps
    frequencies exactly like this.  Each ramp rung is the mass-matrix
    shift ``K + (-omega^2) M_eps`` of the fixed stiffness ``K``.

Both are deterministic: no RNG, analytic sources, byte-stable operators.

Step ``t+1``'s RHS derives from step ``t``'s solution for the heat
sequence (``depends_on_previous``), which is what forces the scheduler
to respect intra-sequence order while still coalescing across tenants.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np
import scipy.sparse as sp

from .maxwell import (MaxwellProblem, _scatter_assemble, antenna_ring_rhs,
                      maxwell_chamber)
from .poisson import PAPER_NUS, PoissonProblem, poisson_2d

__all__ = ["SequenceStep", "HeatSequence", "MaxwellRampSequence"]


@dataclasses.dataclass(frozen=True)
class SequenceStep:
    """One rung of a transient sequence.

    ``sigma`` is the scalar such that the step's operator equals
    ``base + sigma * mass`` (``mass = None`` meaning the identity) — the
    seam into the shifted-family engine.  ``epoch`` increments exactly
    when the operator fingerprint changes; ``t`` is the time at the *end*
    of the step.
    """

    index: int
    t: float
    dt: float
    epoch: int
    sigma: float


class HeatSequence:
    """Adaptive-``dt`` implicit heat stepping as an operator sequence.

    Parameters
    ----------
    problem:
        the spatial :class:`PoissonProblem` (or ``None`` to build
        ``poisson_2d(nx)``).
    n_steps:
        number of time steps (one linear solve each).
    dt0:
        initial time step.
    epoch_length:
        steps per epoch ``K``; the time step (hence the operator
        fingerprint) changes every ``K`` steps.
    growth:
        per-epoch ``dt`` growth factor (> 0; 1.0 degenerates to the
        fixed-operator sequence of :class:`~repro.problems.heat.ImplicitHeat`).
    theta:
        implicitness: 1.0 = backward Euler, 0.5 = Crank-Nicolson.
    source:
        ``f(points, t) -> ndarray``; defaults to the paper's nu-family
        pulse cycling per step (deterministic, no RNG).
    """

    #: step t+1's RHS derives from step t's solution
    depends_on_previous = True
    dtype = np.float64

    def __init__(self, problem: PoissonProblem | None = None, *,
                 nx: int = 16, n_steps: int = 40, dt0: float = 1e-3,
                 epoch_length: int = 10, growth: float = 1.25,
                 theta: float = 1.0,
                 source: Callable[[np.ndarray, float], np.ndarray] | None = None):
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if epoch_length < 1:
            raise ValueError("epoch_length must be >= 1")
        if dt0 <= 0 or growth <= 0:
            raise ValueError("dt0 and growth must be positive")
        if not 0.0 < theta <= 1.0:
            raise ValueError("theta must lie in (0, 1]")
        self.problem = problem if problem is not None else poisson_2d(nx)
        self.n_steps = int(n_steps)
        self.dt0 = float(dt0)
        self.epoch_length = int(epoch_length)
        self.growth = float(growth)
        self.theta = float(theta)
        self.source = source if source is not None else self._paper_source
        a = self.problem.a
        n = self.problem.n
        self._a = sp.csr_matrix(a)
        self._eye = sp.eye(n, format="csr")
        #: fixed shifted-family base: theta * A
        self.base = sp.csr_matrix(theta * a)
        #: identity mass — ``None`` is the engine's identity sentinel
        self.mass = None
        self._lhs_by_epoch: dict[int, sp.csr_matrix] = {}
        self._steps = self._build_steps()

    # -- schedule --------------------------------------------------------
    def dt_of_epoch(self, epoch: int) -> float:
        return self.dt0 * self.growth ** epoch

    def epoch_of(self, index: int) -> int:
        return index // self.epoch_length

    def _build_steps(self) -> list[SequenceStep]:
        steps = []
        t = 0.0
        for i in range(self.n_steps):
            epoch = self.epoch_of(i)
            dt = self.dt_of_epoch(epoch)
            t += dt
            steps.append(SequenceStep(index=i, t=t, dt=dt, epoch=epoch,
                                      sigma=1.0 / dt))
        return steps

    def steps(self) -> list[SequenceStep]:
        return list(self._steps)

    @property
    def n_epochs(self) -> int:
        return self.epoch_of(self.n_steps - 1) + 1

    @property
    def total_time(self) -> float:
        """Simulated seconds covered by the whole sequence."""
        return self._steps[-1].t

    # -- operators and right-hand sides ----------------------------------
    def operator(self, step: SequenceStep) -> sp.csr_matrix:
        """Assembled implicit operator ``theta A + (1/dt) I``.

        Cached per epoch and returned as the *same object* within an
        epoch, so both the object tag and the value fingerprint are
        constant until the schedule actually changes ``dt``.
        """
        lhs = self._lhs_by_epoch.get(step.epoch)
        if lhs is None:
            dt = self.dt_of_epoch(step.epoch)
            lhs = sp.csr_matrix(self.base + self._eye / dt)
            self._lhs_by_epoch[step.epoch] = lhs
        return lhs

    def u0(self) -> np.ndarray:
        return np.zeros(self.problem.n)

    def _paper_source(self, points: np.ndarray, t: float) -> np.ndarray:
        # cycle the paper's four nu parameters per pulse; keyed by the
        # integer pulse count so it is schedule-independent
        nu = PAPER_NUS[int(round(t / self.dt0)) % len(PAPER_NUS)]
        x, y = points[:, 0], points[:, 1]
        return (np.exp(-(1 - x) ** 2 / nu) * np.exp(-(1 - y) ** 2 / nu)) / nu

    def rhs(self, step: SequenceStep, u_prev: np.ndarray) -> np.ndarray:
        """theta-scheme right-hand side from the previous step's field."""
        f = self.source(self.problem.points, step.t)
        return (u_prev / step.dt
                - (1.0 - self.theta) * (self._a @ u_prev)
                + f)


class MaxwellRampSequence:
    """Lossless time-harmonic Maxwell frequency ramp.

    The operator at ramp rung ``e`` is ``K - omega_e^2 M_eps`` with
    ``omega_e = omega0 * omega_growth**e`` — a mass-matrix shift of the
    fixed stiffness ``K`` (shift value ``-omega_e^2``), held for
    ``epoch_length`` steps while the excitation walks around the antenna
    ring.  RHS columns are independent across steps (no intra-sequence
    dependency); the imaging workflow solves one antenna per solve.
    """

    depends_on_previous = False
    dtype = np.complex128

    def __init__(self, problem: MaxwellProblem | None = None, *,
                 n: int = 4, n_steps: int = 8, omega0: float = 8.0,
                 epoch_length: int = 4, omega_growth: float = 1.1,
                 n_antennas: int = 8):
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if epoch_length < 1:
            raise ValueError("epoch_length must be >= 1")
        if omega0 <= 0 or omega_growth <= 0:
            raise ValueError("omega0 and omega_growth must be positive")
        if problem is None:
            problem = maxwell_chamber(n, omega=omega0, cylinder=False,
                                      sigma_background=0.0)
        self.problem = problem
        self.n_steps = int(n_steps)
        self.omega0 = float(omega0)
        self.epoch_length = int(epoch_length)
        self.omega_growth = float(omega_growth)
        mesh = problem.mesh
        free = problem.free_edges
        # lossless split A(omega) = K - omega^2 M_eps on the free edges
        k_full = _scatter_assemble(mesh, problem.elem_k.astype(np.complex128))
        m_full = _scatter_assemble(
            mesh, (problem.eps[:, None, None]
                   * problem.elem_m).astype(np.complex128))
        self.base = sp.csr_matrix(k_full[free][:, free])
        self.mass = sp.csr_matrix(m_full[free][:, free])
        #: one RHS column per antenna, built once at omega0; per-step
        #: columns rescale by omega_e/omega0 (the i*omega*J source factor)
        self._ring = antenna_ring_rhs(problem, n_antennas=n_antennas)
        self.n_antennas = int(n_antennas)
        self._lhs_by_epoch: dict[int, sp.csr_matrix] = {}
        self._steps = self._build_steps()

    def omega_of_epoch(self, epoch: int) -> float:
        return self.omega0 * self.omega_growth ** epoch

    def epoch_of(self, index: int) -> int:
        return index // self.epoch_length

    def _build_steps(self) -> list[SequenceStep]:
        steps = []
        for i in range(self.n_steps):
            epoch = self.epoch_of(i)
            omega = self.omega_of_epoch(epoch)
            # "time" of a ramp rung is the rung count — one simulated
            # second per solve keeps time-per-simulated-second meaningful
            steps.append(SequenceStep(index=i, t=float(i + 1), dt=1.0,
                                      epoch=epoch, sigma=-omega ** 2))
        return steps

    def steps(self) -> list[SequenceStep]:
        return list(self._steps)

    @property
    def n_epochs(self) -> int:
        return self.epoch_of(self.n_steps - 1) + 1

    @property
    def total_time(self) -> float:
        return self._steps[-1].t

    def operator(self, step: SequenceStep) -> sp.csr_matrix:
        """``K - omega_e^2 M_eps``, cached per epoch (stable tag + fp)."""
        lhs = self._lhs_by_epoch.get(step.epoch)
        if lhs is None:
            lhs = sp.csr_matrix(self.base + step.sigma * self.mass)
            self._lhs_by_epoch[step.epoch] = lhs
        return lhs

    def u0(self) -> np.ndarray:
        return np.zeros(self.base.shape[0], dtype=np.complex128)

    def rhs(self, step: SequenceStep, u_prev: np.ndarray) -> np.ndarray:
        omega = self.omega_of_epoch(step.epoch)
        col = self._ring[:, step.index % self.n_antennas]
        return (omega / self.omega0) * col
