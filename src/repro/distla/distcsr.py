"""Row-distributed CSR matrix over a virtual process grid.

Mirrors PETSc's ``MatMPIAIJ`` storage: every rank holds a *diagonal* block
(its rows restricted to its own columns) and an *off-diagonal* block (its
rows restricted to ghost columns), plus a halo plan describing the ghost
exchange.  ``matmat`` has two execution paths (ambient
:func:`repro.util.execmode.exec_mode`):

* ``"fused"`` (default) — one global ``A @ X`` plus an O(1) ledger charge
  replayed from the :class:`~repro.util.ledger.CostTable` precomputed at
  construction.  Numerically the per-rank product *is* the serial product,
  so nothing is lost — only interpreter overhead.
* ``"per_rank"`` — execute the product rank-by-rank (halo exchange + local
  diag/offdiag products), charging the ledger event-by-event.  The
  equivalence tests use this as the oracle for the fused charges.

This is the operator handed to the Krylov solvers for the scalability
benchmarks (Figs. 6-8): the solvers never know they are running on a
simulated distribution.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..simmpi.grid import VirtualGrid
from ..simmpi.halo import HaloPlan, aggregate_halo_cost, build_halo_plans
from ..util import ledger
from ..util.execmode import exec_mode
from ..util.ledger import Kernel
from ..util.misc import as_block, next_tag

__all__ = ["DistributedCSR"]


class DistributedCSR:
    """Row-distributed sparse matrix with PETSc-style diag/offdiag splitting.

    Parameters
    ----------
    a:
        the global sparse matrix (any scipy format; converted to CSR).
    grid:
        row distribution; defaults to a balanced contiguous split over
        ``nranks``.
    nranks:
        convenience alternative to passing a grid.
    """

    def __init__(self, a: sp.spmatrix, grid: VirtualGrid | None = None, *,
                 nranks: int = 1):
        a = sp.csr_matrix(a)
        if a.shape[0] != a.shape[1]:
            raise ValueError("DistributedCSR expects a square matrix")
        self.global_matrix = a
        self.grid = grid if grid is not None else VirtualGrid(a.shape[0], nranks)
        if self.grid.n != a.shape[0]:
            raise ValueError("grid size does not match matrix size")
        self.shape = a.shape
        self.dtype = a.dtype
        self.nnz = a.nnz
        # monotonic identity: never reused after GC, unlike id() (which
        # could spuriously re-enable the same-system fast path)
        self.tag = next_tag()
        self.plans: list[HaloPlan] = build_halo_plans(a, self.grid)
        # per-rank diagonal and off-diagonal blocks (ghost columns compressed)
        self._diag_blocks: list[sp.csr_matrix] = []
        self._off_blocks: list[sp.csr_matrix | None] = []
        if self.grid.nranks == 1:
            # trivial distribution: the diagonal block IS the global matrix —
            # skip the split (it would double memory and setup time)
            self._diag_blocks.append(a)
            self._off_blocks.append(None)
        else:
            for r in range(self.grid.nranks):
                rows = self.grid.rows(r)
                local = a[rows]
                own = local[:, rows]
                plan = self.plans[r]
                off = local[:, plan.ghost_cols] if plan.n_ghost else None
                self._diag_blocks.append(sp.csr_matrix(own))
                self._off_blocks.append(sp.csr_matrix(off) if off is not None else None)
        # aggregate cost of one apply, replayed in O(1) by the fused path
        self.cost = aggregate_halo_cost(self.plans, flops_per_col=2.0 * self.nnz)

    # ------------------------------------------------------------------
    def diagonal(self) -> np.ndarray:
        return np.asarray(self.global_matrix.diagonal())

    def matmat(self, x: np.ndarray) -> np.ndarray:
        """Distributed SpMM: halo exchange + local products."""
        x = as_block(x)
        if x.shape[0] != self.shape[0]:
            raise ValueError(f"operand has {x.shape[0]} rows, expected {self.shape[0]}")
        p = x.shape[1]
        led = ledger.current()
        kern = Kernel.SPMV if p == 1 else Kernel.SPMM
        if exec_mode() == "fused":
            y = as_block(np.asarray(self.global_matrix @ x))
            self.cost.charge(led, itemsize=x.itemsize, p=p, kernel=kern)
            led.event("operator_apply", p)
            return y
        if self.grid.nranks == 1:
            # single-rank loop body, minus the gather copy: no halo, and
            # the diagonal block IS the global matrix
            self.plans[0].charge(x.itemsize, p)
            y = as_block(np.asarray(self._diag_blocks[0] @ x))
            led.flop(kern, 2.0 * self.nnz * p)
            led.event("operator_apply", p)
            return y
        y = np.empty((self.shape[0], p), dtype=np.promote_types(self.dtype, x.dtype))
        for r in range(self.grid.nranks):
            rows = self.grid.rows(r)
            plan = self.plans[r]
            plan.charge(x.itemsize, p)
            yr = self._diag_blocks[r] @ x[rows]
            off = self._off_blocks[r]
            if off is not None:
                ghost_vals = x[plan.ghost_cols]       # the received halo
                yr = yr + off @ ghost_vals
            y[rows] = yr
        led.flop(kern, 2.0 * self.nnz * p)
        led.event("operator_apply", p)
        return y

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matmat(x)

    # ------------------------------------------------------------------
    def communication_volume(self, p: int = 1) -> tuple[int, int]:
        """(messages, bytes) of one SpMM with block width ``p``."""
        return self.cost.p2p_messages, self.cost.p2p_items * self.dtype.itemsize * p

    def __repr__(self) -> str:
        return (f"DistributedCSR(n={self.shape[0]}, nnz={self.nnz}, "
                f"nranks={self.grid.nranks})")
