"""Row-distributed block vectors over a virtual process grid.

The solver stack works on plain ndarrays (the distribution lives in the
operator and the cost ledger), but the scalability analyses need genuinely
partitioned vector objects to verify that every fused operation maps onto
per-rank locals + the advertised collectives.  ``DistributedBlockVector``
is that object: local blocks per rank, global assembly only on request,
and all reductions routed through :mod:`repro.simmpi.collectives`.
"""

from __future__ import annotations

import numpy as np

from ..simmpi.collectives import allreduce_sum
from ..simmpi.grid import VirtualGrid
from ..util.misc import as_block

__all__ = ["DistributedBlockVector"]


class DistributedBlockVector:
    """An ``n x p`` block stored as per-rank row slices.

    Parameters
    ----------
    grid:
        the row distribution.
    locals_:
        one array per rank, shapes ``(grid.local_size(r), p)``.
    """

    def __init__(self, grid: VirtualGrid, locals_: list[np.ndarray]):
        if len(locals_) != grid.nranks:
            raise ValueError(f"expected {grid.nranks} local blocks")
        p = as_block(locals_[0]).shape[1]
        self.locals = []
        for r, loc in enumerate(locals_):
            loc = as_block(loc)
            if loc.shape != (grid.local_size(r), p):
                raise ValueError(
                    f"rank {r}: local block {loc.shape} != "
                    f"({grid.local_size(r)}, {p})")
            self.locals.append(loc)
        self.grid = grid
        self.p = p

    # ------------------------------------------------------------------
    @classmethod
    def from_global(cls, grid: VirtualGrid, x: np.ndarray
                    ) -> "DistributedBlockVector":
        """Scatter a global array into per-rank blocks (copying)."""
        x = as_block(x)
        if x.shape[0] != grid.n:
            raise ValueError(f"global array has {x.shape[0]} rows, grid "
                             f"expects {grid.n}")
        return cls(grid, [x[grid.rows(r)].copy() for r in range(grid.nranks)])

    def to_global(self) -> np.ndarray:
        """Assemble the global array (an allgather in a real run)."""
        return np.concatenate(self.locals, axis=0)

    # ------------------------------------------------------------------
    def dot(self, other: "DistributedBlockVector") -> np.ndarray:
        """Block inner product ``X^H Y`` (p x p), one global reduction."""
        self._check_compatible(other)
        parts = [a.conj().T @ b for a, b in zip(self.locals, other.locals)]
        return allreduce_sum(self.grid, parts)

    def col_dots(self, other: "DistributedBlockVector") -> np.ndarray:
        """Column-wise <x_j, y_j>, one global reduction."""
        self._check_compatible(other)
        parts = [np.einsum("ij,ij->j", a.conj(), b)
                 for a, b in zip(self.locals, other.locals)]
        return allreduce_sum(self.grid, parts)

    def norms(self) -> np.ndarray:
        """Column 2-norms, one global reduction."""
        parts = [np.einsum("ij,ij->j", a.conj(), a).real
                 for a in self.locals]
        return np.sqrt(allreduce_sum(self.grid, parts))

    # -- local (communication-free) operations -----------------------------
    def axpy(self, alpha, other: "DistributedBlockVector") -> "DistributedBlockVector":
        """self + alpha * other (elementwise or per-column alpha)."""
        self._check_compatible(other)
        return DistributedBlockVector(
            self.grid, [a + alpha * b
                        for a, b in zip(self.locals, other.locals)])

    def scale(self, alpha) -> "DistributedBlockVector":
        return DistributedBlockVector(self.grid,
                                      [alpha * a for a in self.locals])

    def combine(self, coeffs: np.ndarray) -> "DistributedBlockVector":
        """Right-multiply by a small (p x q) matrix — purely local."""
        coeffs = np.asarray(coeffs)
        return DistributedBlockVector(self.grid,
                                      [a @ coeffs for a in self.locals])

    def copy(self) -> "DistributedBlockVector":
        return DistributedBlockVector(self.grid,
                                      [a.copy() for a in self.locals])

    # ------------------------------------------------------------------
    def _check_compatible(self, other: "DistributedBlockVector") -> None:
        if self.grid != other.grid:
            raise ValueError("mismatched grids")
        if self.p != other.p:
            raise ValueError(f"mismatched widths {self.p} vs {other.p}")

    @property
    def shape(self) -> tuple[int, int]:
        return (self.grid.n, self.p)

    def __repr__(self) -> str:
        return (f"DistributedBlockVector(n={self.grid.n}, p={self.p}, "
                f"nranks={self.grid.nranks})")
