"""Row-distributed block vectors over a virtual process grid.

The solver stack works on plain ndarrays (the distribution lives in the
operator and the cost ledger), but the scalability analyses need genuinely
partitioned vector objects to verify that every fused operation maps onto
per-rank locals + the advertised collectives.  ``DistributedBlockVector``
is that object, with two storage modes:

* **fused** (default, via :meth:`from_global` under ``exec_mode="fused"``)
  — one contiguous global backing array; ``locals`` are zero-copy views
  into it, materialized lazily.  Reductions run as single einsums/GEMMs on
  the backing store with one batched ledger charge, and the in-place
  ``axpy_``/``scale_`` variants mutate it without allocating anything.
* **per-rank** — one array per rank, every operation loops over the
  virtual ranks and routes reductions through
  :mod:`repro.simmpi.collectives`, exactly like a real MPI run partitions
  the work.

Both modes charge bit-identical ledger counts (the reduction payloads are
the same arrays), which the equivalence tests assert.
"""

from __future__ import annotations

import numpy as np

from ..simmpi.collectives import allreduce_sum
from ..simmpi.grid import VirtualGrid
from ..util import ledger
from ..util.execmode import exec_mode
from ..util.misc import as_block

__all__ = ["DistributedBlockVector"]


class DistributedBlockVector:
    """An ``n x p`` block stored as per-rank row slices.

    Parameters
    ----------
    grid:
        the row distribution.
    locals_:
        one array per rank, shapes ``(grid.local_size(r), p)``.
    """

    def __init__(self, grid: VirtualGrid, locals_: list[np.ndarray]):
        if len(locals_) != grid.nranks:
            raise ValueError(f"expected {grid.nranks} local blocks")
        p = as_block(locals_[0]).shape[1]
        checked = []
        for r, loc in enumerate(locals_):
            loc = as_block(loc)
            if loc.shape != (grid.local_size(r), p):
                raise ValueError(
                    f"rank {r}: local block {loc.shape} != "
                    f"({grid.local_size(r)}, {p})")
            checked.append(loc)
        self._locals: list[np.ndarray] | None = checked
        self._data: np.ndarray | None = None
        self.grid = grid
        self.p = p

    # ------------------------------------------------------------------
    @classmethod
    def _from_data(cls, grid: VirtualGrid, data: np.ndarray
                   ) -> "DistributedBlockVector":
        """Wrap a contiguous global array as a fused-storage vector."""
        obj = cls.__new__(cls)
        obj.grid = grid
        obj._data = data
        obj._locals = None
        obj.p = data.shape[1]
        return obj

    @classmethod
    def from_global(cls, grid: VirtualGrid, x: np.ndarray, *,
                    mode: str | None = None) -> "DistributedBlockVector":
        """Scatter a global array into per-rank blocks (copying).

        Under ``exec_mode="fused"`` (or ``mode="fused"``) the copy is one
        contiguous backing array and the per-rank blocks are views into it.
        """
        x = as_block(x)
        if x.shape[0] != grid.n:
            raise ValueError(f"global array has {x.shape[0]} rows, grid "
                             f"expects {grid.n}")
        if (mode or exec_mode()) == "fused":
            return cls._from_data(grid, x.copy())
        return cls(grid, [x[grid.rows(r)].copy() for r in range(grid.nranks)])

    def to_global(self) -> np.ndarray:
        """Assemble the global array (an allgather in a real run)."""
        if self._data is not None:
            return self._data.copy()
        return np.concatenate(self._locals, axis=0)

    # ------------------------------------------------------------------
    @property
    def locals(self) -> list[np.ndarray]:
        """Per-rank row blocks (zero-copy views in fused storage)."""
        if self._locals is None:
            data, grid = self._data, self.grid
            self._locals = [data[grid.rows(r)] for r in range(grid.nranks)]
        return self._locals

    @property
    def global_data(self) -> np.ndarray | None:
        """The contiguous backing array, or ``None`` for per-rank storage."""
        return self._data

    @property
    def is_fused(self) -> bool:
        return self._data is not None

    def _fused_with(self, other: "DistributedBlockVector | None" = None) -> bool:
        """True when the fused fast path applies to this operation."""
        if exec_mode() != "fused" or self._data is None:
            return False
        return other is None or other._data is not None

    # ------------------------------------------------------------------
    def dot(self, other: "DistributedBlockVector") -> np.ndarray:
        """Block inner product ``X^H Y`` (p x p), one global reduction."""
        self._check_compatible(other)
        if self._fused_with(other):
            out = self._data.conj().T @ other._data
            ledger.current().reduction(nbytes=out.nbytes)
            return out
        parts = [a.conj().T @ b for a, b in zip(self.locals, other.locals)]
        return allreduce_sum(self.grid, parts)

    def col_dots(self, other: "DistributedBlockVector") -> np.ndarray:
        """Column-wise <x_j, y_j>, one global reduction."""
        self._check_compatible(other)
        if self._fused_with(other):
            out = np.einsum("ij,ij->j", self._data.conj(), other._data)
            ledger.current().reduction(nbytes=out.nbytes)
            return out
        parts = [np.einsum("ij,ij->j", a.conj(), b)
                 for a, b in zip(self.locals, other.locals)]
        return allreduce_sum(self.grid, parts)

    def gram_against(self, basis_blocks: "list[DistributedBlockVector]"
                     ) -> np.ndarray:
        """All projection coefficients ``[B_0^H x; ...; B_{j-1}^H x]`` in
        ONE fused reduction (stacked payload).

        This is the low-synchronization Arnoldi primitive: instead of ``j``
        separate :meth:`dot` calls (one reduction each), the per-block Gram
        partials are stacked into a single ``(sum_i p_i) x p`` payload that
        travels in one ``allreduce`` — message count 1 at every basis depth,
        payload bytes unchanged.  Returns the stacked coefficient matrix.
        """
        for b in basis_blocks:
            if self.grid != b.grid:
                raise ValueError("mismatched grids")
        if not basis_blocks:
            return np.zeros((0, self.p),
                            dtype=self._data.dtype if self._data is not None
                            else self.locals[0].dtype)
        if self._fused_with() and all(b._data is not None
                                      for b in basis_blocks):
            out = np.concatenate(
                [b._data.conj().T @ self._data for b in basis_blocks], axis=0)
            ledger.current().reduction(nbytes=out.nbytes)
            return out
        parts = [np.concatenate(
                     [b.locals[r].conj().T @ self.locals[r]
                      for b in basis_blocks], axis=0)
                 for r in range(self.grid.nranks)]
        return allreduce_sum(self.grid, parts)

    def norms(self) -> np.ndarray:
        """Column 2-norms, one global reduction."""
        if self._fused_with():
            sq = np.einsum("ij,ij->j", self._data.conj(), self._data).real
            ledger.current().reduction(nbytes=sq.nbytes)
            return np.sqrt(sq)
        parts = [np.einsum("ij,ij->j", a.conj(), a).real
                 for a in self.locals]
        return np.sqrt(allreduce_sum(self.grid, parts))

    # -- local (communication-free) operations -----------------------------
    def axpy(self, alpha, other: "DistributedBlockVector") -> "DistributedBlockVector":
        """self + alpha * other (elementwise or per-column alpha)."""
        self._check_compatible(other)
        if self._fused_with(other):
            return DistributedBlockVector._from_data(
                self.grid, self._data + alpha * other._data)
        return DistributedBlockVector(
            self.grid, [a + alpha * b
                        for a, b in zip(self.locals, other.locals)])

    def scale(self, alpha) -> "DistributedBlockVector":
        if self._fused_with():
            return DistributedBlockVector._from_data(self.grid,
                                                     alpha * self._data)
        return DistributedBlockVector(self.grid,
                                      [alpha * a for a in self.locals])

    def combine(self, coeffs: np.ndarray) -> "DistributedBlockVector":
        """Right-multiply by a small (p x q) matrix — purely local."""
        coeffs = np.asarray(coeffs)
        if self._fused_with():
            return DistributedBlockVector._from_data(self.grid,
                                                     self._data @ coeffs)
        return DistributedBlockVector(self.grid,
                                      [a @ coeffs for a in self.locals])

    def copy(self) -> "DistributedBlockVector":
        if self._data is not None:
            return DistributedBlockVector._from_data(self.grid,
                                                     self._data.copy())
        return DistributedBlockVector(self.grid,
                                      [a.copy() for a in self.locals])

    # -- in-place variants (no per-rank list allocation in hot loops) ------
    def axpy_(self, alpha, other: "DistributedBlockVector"
              ) -> "DistributedBlockVector":
        """In-place ``self += alpha * other``; returns self."""
        self._check_compatible(other)
        if self._data is not None and other._data is not None:
            self._data += alpha * other._data
        else:
            for a, b in zip(self.locals, other.locals):
                a += alpha * b
        return self

    def scale_(self, alpha) -> "DistributedBlockVector":
        """In-place ``self *= alpha``; returns self."""
        if self._data is not None:
            self._data *= alpha
        else:
            for a in self.locals:
                a *= alpha
        return self

    # ------------------------------------------------------------------
    def _check_compatible(self, other: "DistributedBlockVector") -> None:
        if self.grid != other.grid:
            raise ValueError("mismatched grids")
        if self.p != other.p:
            raise ValueError(f"mismatched widths {self.p} vs {other.p}")

    @property
    def shape(self) -> tuple[int, int]:
        return (self.grid.n, self.p)

    def __repr__(self) -> str:
        return (f"DistributedBlockVector(n={self.grid.n}, p={self.p}, "
                f"nranks={self.grid.nranks})")
