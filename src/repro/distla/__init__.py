"""Distributed linear algebra over the simulated MPI layer."""

from .distcsr import DistributedCSR

__all__ = ["DistributedCSR"]
