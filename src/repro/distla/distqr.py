"""Distributed tall-skinny QR over a virtual process grid.

The communication-critical kernel of GCRO-DR (paper lines 11 and 24):

* **CholQR** — one per-rank local Gram, one all-reduce, one redundant
  Cholesky, one local triangular solve (single reduction total);
* **TSQR** — per-rank local Householder QR, a binary reduction tree over
  the small R factors (single reduction, unconditionally stable);
* **CGS** — column-by-column projection: ``2p - 1`` reductions, retained
  as the baseline the paper's §III-D compares against.

These run genuinely rank-partitioned (per-rank locals, collectives from
:mod:`repro.simmpi`), so the tests can assert both the numerics *and* the
reduction counts against the serial kernels in :mod:`repro.la`.

CholQR and CGS additionally have fused fast paths (one GEMM/solve on the
contiguous backing store of a fused :class:`DistributedBlockVector`, same
reduction charges); TSQR always runs per-rank because its local-QR +
reduction-tree flop counts *are* the algorithm being accounted.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..simmpi.collectives import allreduce_sum
from ..util import ledger
from ..util.ledger import Kernel
from .. import verify
from .distvec import DistributedBlockVector

__all__ = ["distributed_cholqr", "distributed_cholqr2", "distributed_tsqr",
           "distributed_cgs_qr"]


def _verify_qr(x: DistributedBlockVector, q: DistributedBlockVector,
               r: np.ndarray, what: str) -> None:
    """Report the factorization to the ambient invariant checker (if any).

    Assembles the global arrays only at ``full`` level — the allgather this
    implies in a real run is exactly why the check is opt-in.  Columns below
    the numerical rank (zero/deficient diagonal of ``R``) are excluded from
    the orthonormality test; the reconstruction test covers all of them.
    """
    chk = verify.current()
    if not chk.wants_full:
        return
    d = np.abs(np.diagonal(r))
    scale = float(d.max()) if d.size else 0.0
    rank = int(np.count_nonzero(d > 1e-12 * scale)) if scale > 0 else 0
    chk.check_qr(x.to_global(), q.to_global(), r, rank=rank, what=what)


def distributed_cholqr(x: DistributedBlockVector
                       ) -> tuple[DistributedBlockVector, np.ndarray]:
    """CholQR on a distributed block: one reduction, Gram + local solves."""
    grid = x.grid
    led = ledger.current()
    if x._fused_with():
        data = x.global_data
        gram = data.conj().T @ data             # the single reduction
        led.reduction(nbytes=gram.nbytes)
        r = np.linalg.cholesky(gram).conj().T
        led.flop(Kernel.BLAS3, 2.0 * grid.n * x.p ** 2)
        q = sla.solve_triangular(r.T, data.T, lower=True).T
        qv = DistributedBlockVector._from_data(grid, q)
        _verify_qr(x, qv, r, "distributed CholQR (fused)")
        return qv, r
    parts = [a.conj().T @ a for a in x.locals]
    gram = allreduce_sum(grid, parts)           # the single reduction
    r = np.linalg.cholesky(gram).conj().T       # redundant on every rank
    led.flop(Kernel.BLAS3, 2.0 * grid.n * x.p ** 2)
    q_locals = [sla.solve_triangular(r.T, a.T, lower=True).T
                for a in x.locals]
    qv = DistributedBlockVector(grid, q_locals)
    _verify_qr(x, qv, r, "distributed CholQR")
    return qv, r


def distributed_cholqr2(x: DistributedBlockVector
                        ) -> tuple[DistributedBlockVector, np.ndarray]:
    """CholQR2: shifted first pass + one refinement pass — 2 reductions.

    The first Gram gets the classic ``11(np + p(p+1)) u ||x||^2`` diagonal
    shift so the Cholesky cannot break down; the second pass restores
    orthonormality to machine precision.  The distributed counterpart of
    :func:`repro.la.orthogonalization.cholqr2`, with the same fused /
    per-rank duality (bit-identical ledger charges) as
    :func:`distributed_cholqr`.
    """
    grid = x.grid
    p = x.p
    led = ledger.current()
    u = np.finfo(np.float64).eps

    def _shifted_factor(gram: np.ndarray) -> np.ndarray:
        shift = 11.0 * (grid.n * p + p * (p + 1)) * u * float(
            np.trace(gram).real)
        return np.linalg.cholesky(
            gram + shift * np.eye(p, dtype=gram.dtype)).conj().T

    if x._fused_with():
        data = x.global_data
        gram = data.conj().T @ data                 # reduction 1
        led.reduction(nbytes=gram.nbytes)
        r1 = _shifted_factor(gram)
        led.flop(Kernel.BLAS3, 2.0 * grid.n * p ** 2)
        q1 = sla.solve_triangular(r1.T, data.T, lower=True).T
        g2 = q1.conj().T @ q1                       # reduction 2
        led.reduction(nbytes=g2.nbytes)
        r2 = np.linalg.cholesky(g2).conj().T
        led.flop(Kernel.BLAS3, 2.0 * grid.n * p ** 2)
        q = sla.solve_triangular(r2.T, q1.T, lower=True).T
        qv = DistributedBlockVector._from_data(grid, q)
        r = r2 @ r1
        _verify_qr(x, qv, r, "distributed CholQR2 (fused)")
        return qv, r
    gram = allreduce_sum(grid, [a.conj().T @ a for a in x.locals])
    r1 = _shifted_factor(gram)                      # redundant on every rank
    led.flop(Kernel.BLAS3, 2.0 * grid.n * p ** 2)
    q1_locals = [sla.solve_triangular(r1.T, a.T, lower=True).T
                 for a in x.locals]
    g2 = allreduce_sum(grid, [a.conj().T @ a for a in q1_locals])
    r2 = np.linalg.cholesky(g2).conj().T
    led.flop(Kernel.BLAS3, 2.0 * grid.n * p ** 2)
    q_locals = [sla.solve_triangular(r2.T, a.T, lower=True).T
                for a in q1_locals]
    qv = DistributedBlockVector(grid, q_locals)
    r = r2 @ r1
    _verify_qr(x, qv, r, "distributed CholQR2")
    return qv, r


def distributed_tsqr(x: DistributedBlockVector
                     ) -> tuple[DistributedBlockVector, np.ndarray]:
    """TSQR: local Householder QRs + a binary tree over the R factors.

    The tree is executed explicitly (one reduction charged); the thin Q is
    reconstructed per rank by back-substituting the combined R — stable
    for any block the local QRs can handle.
    """
    grid = x.grid
    p = x.p
    led = ledger.current()
    local_qs, rs = [], []
    for a in x.locals:
        q, r = np.linalg.qr(a)
        led.flop(Kernel.QR, 4.0 * a.shape[0] * p ** 2)
        local_qs.append(q)
        rs.append(r)
    # binary reduction tree over the p x p R factors
    tree_qs: list[list[np.ndarray]] = [[] for _ in rs]
    level = list(range(len(rs)))
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            a_idx, b_idx = level[i], level[i + 1]
            stacked = np.vstack([rs[a_idx], rs[b_idx]])
            q, r = np.linalg.qr(stacked)
            led.flop(Kernel.QR, 8.0 * p ** 3)
            rs[a_idx] = r
            tree_qs[a_idx].append((q, b_idx))
            nxt.append(a_idx)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    led.reduction(nbytes=p * p * x.locals[0].itemsize)
    r_final = rs[level[0]]
    # reconstruct per-rank thin Q by solving X = Q R locally
    try:
        q_locals = [sla.solve_triangular(r_final.conj().T, a.conj().T,
                                         lower=True).conj().T
                    for a in x.locals]
    except (sla.LinAlgError, ValueError):
        q_locals = [np.linalg.lstsq(r_final.conj().T, a.conj().T,
                                    rcond=None)[0].conj().T
                    for a in x.locals]
    qv = DistributedBlockVector(grid, q_locals)
    _verify_qr(x, qv, r_final, "distributed TSQR")
    return qv, r_final


def distributed_cgs_qr(x: DistributedBlockVector
                       ) -> tuple[DistributedBlockVector, np.ndarray]:
    """Classical Gram-Schmidt, one column at a time: 2p - 1 reductions."""
    grid = x.grid
    p = x.p
    if x._fused_with():
        return _fused_cgs_qr(x)
    work = [a.astype(np.promote_types(a.dtype, np.float64), copy=True)
            for a in x.locals]
    r = np.zeros((p, p), dtype=work[0].dtype)
    for j in range(p):
        if j > 0:
            coeffs = allreduce_sum(
                grid, [w[:, :j].conj().T @ w[:, j: j + 1] for w in work])
            for w in work:
                w[:, j: j + 1] -= w[:, :j] @ coeffs
            r[:j, j] = coeffs[:, 0]
        nrm2 = allreduce_sum(
            grid, [np.array([np.vdot(w[:, j], w[:, j]).real]) for w in work])
        nrm = float(np.sqrt(nrm2[0]))
        if nrm > 0:
            for w in work:
                w[:, j] /= nrm
        r[j, j] = nrm
    qv = DistributedBlockVector(grid, work)
    _verify_qr(x, qv, r, "distributed CGS QR")
    return qv, r


def _fused_cgs_qr(x: DistributedBlockVector
                  ) -> tuple[DistributedBlockVector, np.ndarray]:
    """CGS on the contiguous backing store: same 2p - 1 reduction charges."""
    grid = x.grid
    p = x.p
    led = ledger.current()
    work = x.global_data.astype(
        np.promote_types(x.global_data.dtype, np.float64), copy=True)
    r = np.zeros((p, p), dtype=work.dtype)
    for j in range(p):
        if j > 0:
            coeffs = work[:, :j].conj().T @ work[:, j: j + 1]
            led.reduction(nbytes=coeffs.nbytes)
            work[:, j: j + 1] -= work[:, :j] @ coeffs
            r[:j, j] = coeffs[:, 0]
        nrm2 = np.array([np.vdot(work[:, j], work[:, j]).real])
        led.reduction(nbytes=nrm2.nbytes)
        nrm = float(np.sqrt(nrm2[0]))
        if nrm > 0:
            work[:, j] /= nrm
        r[j, j] = nrm
    qv = DistributedBlockVector._from_data(grid, work)
    _verify_qr(x, qv, r, "distributed CGS QR (fused)")
    return qv, r
