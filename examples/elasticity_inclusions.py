#!/usr/bin/env python
"""Shape-optimization-style elasticity sequence (paper §IV-C / Fig. 3).

Four *varying* 3-D linear-elasticity operators — a small spherical
inclusion moves and changes stiffness between solves, exactly the paper's
parameter sets.  Because the operator changes, GCRO-DR re-orthonormalizes
``A_i U_k`` at each new system (paper lines 3-7) and refreshes the
recycled space through the generalized eigenproblem of eq. (3).

Two comparisons, mirroring Fig. 3:

* **Fig. 3c/d regime** — a *linear* preconditioner of moderate strength
  (SSOR; the paper's Chebyshev-smoothed AMG leaves nothing to recycle at
  laptop scale — see EXPERIMENTS.md) with right preconditioning:
  GMRES(30) vs LGMRES(30,10) vs GCRO-DR(30,10).  The paper's ranking
  (GCRO-DR converges in ~35% fewer iterations than LGMRES) reproduces.
* **Fig. 3a/b pairing** — rigid-body-mode AMG with a CG(4) smoother: the
  smoother makes the preconditioner *variable*, so FGMRES / FGCRO-DR are
  mandatory (attempting ``variant="right"`` raises).

Run:  python examples/elasticity_inclusions.py [ne]
"""

import sys
import time

import numpy as np

from repro import Options, Solver
from repro.krylov.lgmres import lgmres
from repro.precond.amg import SmoothedAggregationAMG
from repro.precond.simple import SSORPreconditioner
from repro.problems.elasticity import PAPER_INCLUSIONS, elasticity_3d


def run_methods(systems, make_prec, methods, label):
    print(label)
    print(f"{'method':>16} " + " ".join(f"{'sys' + str(i + 1):>6}" for i in range(4))
          + f" {'total':>6} {'time':>8}")
    totals = {}
    for method_label, options in methods:
        s = Solver(options=options)
        its, t_all = [], 0.0
        for prob in systems:
            m = make_prec(prob)
            t0 = time.perf_counter()
            if options.krylov_method == "lgmres":
                res = lgmres(prob.a, prob.rhs_vector, m, options=options)
            else:
                res = s.solve(prob.a, prob.rhs_vector, m=m)
            t_all += time.perf_counter() - t0
            assert res.converged.all(), f"{method_label} failed to converge"
            its.append(res.iterations)
        print(f"{method_label:>16} " + " ".join(f"{i:>6}" for i in its)
              + f" {sum(its):>6} {t_all:>7.2f}s")
        totals[method_label] = sum(its)
    print()
    return totals


def run(ne: int = 9) -> None:
    print(f"assembling 4 varying elasticity systems (ne={ne}) ...")
    systems = [elasticity_3d(ne, inclusion=inc) for inc in PAPER_INCLUSIONS]
    print(f"  {systems[0].n} unknowns each\n")

    # ---- Fig. 3c/d regime: linear preconditioner, right side -------------
    base = Options(krylov_method="gmres", gmres_restart=30, tol=1e-8,
                   variant="right", max_it=8000)
    t = run_methods(
        systems, lambda p: SSORPreconditioner(p.a),
        [("GMRES(30)", base),
         ("LGMRES(30,10)", base.replace(krylov_method="lgmres", recycle=10)),
         ("GCRO-DR(30,10)", base.replace(krylov_method="gcrodr", recycle=10))],
        "Fig. 3c/d regime - linear preconditioner (SSOR), right side")
    print(f"  GCRO-DR vs LGMRES: {100 * (t['LGMRES(30,10)'] - t['GCRO-DR(30,10)']) / t['LGMRES(30,10)']:+.0f}% "
          f"iterations (paper: 173 vs 269 = -36%)")
    print(f"  GCRO-DR vs GMRES : {100 * (t['GMRES(30)'] - t['GCRO-DR(30,10)']) / t['GMRES(30)']:+.0f}%\n")

    # ---- Fig. 3a/b pairing: variable AMG, flexible methods ---------------
    flex = Options(krylov_method="gmres", gmres_restart=30, tol=1e-8,
                   variant="flexible", max_it=4000)
    def amg_cg(p):
        return SmoothedAggregationAMG(p.a, nullspace=p.nullspace,
                                      block_size=3, smoother="cg",
                                      smoother_iterations=4)
    run_methods(
        systems, amg_cg,
        [("FGMRES(30)", flex),
         ("FGCRO-DR(30,10)", flex.replace(krylov_method="gcrodr", recycle=10))],
        "Fig. 3a/b pairing - AMG with CG(4) smoother (variable preconditioner)")

    # show that HPDDM-style enforcement is active
    try:
        Solver(options=Options(krylov_method="gcrodr", recycle=10,
                               variant="right")).solve(
            systems[0].a, systems[0].rhs_vector, m=amg_cg(systems[0]))
    except ValueError as exc:
        print(f"right-preconditioned GCRO-DR with a variable M is rejected, "
              f"as in HPDDM:\n  ValueError: {exc}")


if __name__ == "__main__":
    run(int(sys.argv[1]) if len(sys.argv) > 1 else 9)
