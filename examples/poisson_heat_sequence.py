#!/usr/bin/env python
"""Implicit heat equation: recycling across right-hand sides (paper §IV-B).

One Poisson operator (the steady-state heat operator), the paper's four
successive right-hand sides f_i(x, y; nu_i) — "like one would have to do
when solving a time-dependent problem" — solved three ways:

1. GMRES(30) with an SSOR preconditioner (the PETSc-default-strength
   regime of the paper's artifact sanity check, appendix E);
2. GCRO-DR(30,10) with the same preconditioner and the same-system fast
   path (``-hpddm_recycle_same_system``);
3. FGMRES vs FGCRO-DR under a *variable* GMRES(3)-smoothed AMG — the
   exact solver pairing of Fig. 2a (at laptop scale the AMG is so strong
   that both need only a handful of iterations; the recycling gain of the
   paper's 283M-unknown runs comes from the slow modes such a small
   problem does not have — see EXPERIMENTS.md).

Run:  python examples/poisson_heat_sequence.py [grid_size]
"""

import sys
import time

import numpy as np

from repro import Options, Solver
from repro.precond.amg import SmoothedAggregationAMG
from repro.precond.simple import SSORPreconditioner
from repro.problems.poisson import PAPER_NUS, poisson_2d


def solve_sequence(prob, m, options, label):
    print(label)
    print(f"{'RHS':>4} {'nu':>8} {'iters':>6} {'time (s)':>9}")
    s = Solver(m, options=options)
    tot_it = tot_t = 0
    for nu in PAPER_NUS:
        b = prob.rhs(nu)
        t0 = time.perf_counter()
        res = s.solve(prob.a, b)
        dt = time.perf_counter() - t0
        assert res.converged.all(), f"{label} failed to converge"
        print(f"{'':>4} {nu:>8g} {res.iterations:>6} {dt:>9.3f}")
        tot_it += res.iterations
        tot_t += dt
    print(f"{'sum':>4} {'':>8} {tot_it:>6} {tot_t:>9.3f}\n")
    return tot_it, tot_t


def run(nx: int = 96) -> None:
    prob = poisson_2d(nx)
    print(f"2-D Poisson / implicit heat operator, {prob.n} unknowns\n")

    # ---- artifact-style regime: moderate preconditioner ------------------
    ssor = SSORPreconditioner(prob.a)
    gmres_o = Options(krylov_method="gmres", gmres_restart=30, tol=1e-8,
                      variant="right", max_it=20000)
    gcro_o = gmres_o.replace(krylov_method="gcrodr", recycle=10,
                             recycle_same_system=True)
    i1, t1 = solve_sequence(prob, ssor, gmres_o, "GMRES(30) + SSOR")
    i2, t2 = solve_sequence(prob, ssor, gcro_o, "GCRO-DR(30,10) + SSOR")
    print(f"=> recycling gain: {100 * (i1 - i2) / i1:+.0f}% iterations, "
          f"{100 * (t1 - t2) / t1:+.0f}% time\n")

    # ---- Fig. 2a pairing: variable AMG, flexible outer methods ----------
    t0 = time.perf_counter()
    amg = SmoothedAggregationAMG(prob.a, smoother="gmres",
                                 smoother_iterations=3)
    print(f"GAMG-like AMG setup: {time.perf_counter() - t0:.2f}s, "
          f"{amg.n_levels} levels (variable => flexible methods)\n")
    fg_o = gmres_o.replace(variant="flexible")
    fr_o = gcro_o.replace(variant="flexible")
    i3, t3 = solve_sequence(prob, amg, fg_o, "FGMRES(30) + AMG[GMRES(3)]")
    i4, t4 = solve_sequence(prob, amg, fr_o, "FGCRO-DR(30,10) + AMG[GMRES(3)]")
    print(f"=> with a strong AMG at this scale both converge in a handful "
          f"of iterations ({i3} vs {i4}); recycling is neutral, as expected.")


if __name__ == "__main__":
    run(int(sys.argv[1]) if len(sys.argv) > 1 else 96)
