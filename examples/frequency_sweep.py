#!/usr/bin/env python
"""Maxwell frequency sweep: k frequencies for the reductions of one.

Assembles the time-harmonic Maxwell pair ``(K, M)`` on Nédélec edge
elements over a tetrahedral box (PEC walls eliminated) and computes the
frequency response ``(K + sigma_i M) x_i = b`` at ``k`` damped
frequencies ``sigma_i = -omega_i^2 (eps + i sigma / omega_i)`` three
ways:

* **shared-basis family** — ``solve(K, b, shifts=[...], mass=M)``: one
  block Arnoldi sweep on the whitened operator answers every frequency;
  the per-shift work is a dense least-squares against the shifted
  Hessenberg ``H-bar + sigma E-bar``, replicated on every rank, costing
  zero additional global reductions;
* **sequential oracle** — one independent solve per frequency, the
  universal baseline practice (and the bit-exact convergence oracle);
* **recycled family** — ``bgcrodr``: a recycle pair harvested once from
  the shared basis is reused across all shifts without per-shift
  projection (Burke's unprojected method).

The printout compares global reduction counts (from the cost ledger)
and modeled wall time at 64 ranks (from the performance model), and
verifies every frequency against its true shifted residual.

Run:  python examples/frequency_sweep.py [mesh_n] [n_frequencies]
"""

import sys
from pathlib import Path

if __package__ is None:  # allow running without PYTHONPATH=src
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np
import scipy.sparse as sp

from repro import Options, solve
from repro.krylov.shifted import sequential_shifted_solves, shifted_matrix
from repro.perfmodel import modeled_time
from repro.problems.maxwell import (box_tet_mesh, _scatter_assemble,
                                    edge_element_matrices)
from repro.util import ledger
from repro.util.ledger import CostLedger

NRANKS = 64


def assemble(mesh_n: int):
    """Edge-element ``(K, M)`` on the unit box, PEC boundary removed."""
    mesh = box_tet_mesh(mesh_n)
    ke, me = edge_element_matrices(mesh)
    free = np.setdiff1d(np.arange(mesh.n_edges), mesh.boundary_edges)
    k_mat = sp.csr_matrix(_scatter_assemble(mesh, ke)[free][:, free])
    m_mat = sp.csr_matrix(_scatter_assemble(mesh, me)[free][:, free])
    return k_mat, m_mat


def run(mesh_n: int = 5, n_freq: int = 8) -> None:
    stiff, mass = assemble(mesh_n)
    n = stiff.shape[0]
    omegas = np.linspace(1.0, 2.0, n_freq)
    # lossy chamber: eps = 2, conductivity 1 -> damped complex shifts
    shifts = [-(w ** 2) * (2.0 + 1j * 1.0 / w) for w in omegas]
    b = np.random.default_rng(42).standard_normal(n)
    opts = Options(krylov_method="bgmres", gmres_restart=40, tol=1e-8,
                   max_it=6000, orthogonalization="cgs2_1r")
    print(f"Maxwell frequency sweep: n={n} edge DOFs, "
          f"{n_freq} frequencies in [{omegas[0]:g}, {omegas[-1]:g}]")

    led_fam = CostLedger()
    with ledger.install(led_fam):
        fam = solve(stiff, b, options=opts, shifts=shifts, mass=mass)
    led_seq = CostLedger()
    with ledger.install(led_seq):
        seq = sequential_shifted_solves(stiff, b, shifts, mass=mass,
                                        options=opts)
    led_rec = CostLedger()
    with ledger.install(led_rec):
        rec = solve(stiff, b, options=Options(
            krylov_method="bgcrodr", gmres_restart=40, recycle=8, tol=1e-8,
            max_it=6000, orthogonalization="cgs2_1r"),
            shifts=shifts, mass=mass)

    worst = 0.0
    for sigma, r in zip(fam.shifts, fam.results):
        res = np.linalg.norm(b - shifted_matrix(stiff, sigma, mass)
                             @ np.ravel(r.x)) / np.linalg.norm(b)
        worst = max(worst, float(res))

    t_fam = modeled_time(led_fam, NRANKS, block_width=n_freq).total
    t_rec = modeled_time(led_rec, NRANKS, block_width=n_freq).total
    t_seq = modeled_time(led_seq, NRANKS, block_width=1).total
    rows = [("family (shared basis, BGMRES)", fam, led_fam, t_fam),
            ("family (recycled, BGCRODR)", rec, led_rec, t_rec),
            ("sequential (one solve/shift)", seq, led_seq, t_seq)]
    for label, result, led, t in rows:
        print(f"  {label:<32} converged {str(result.converged.all()):<5} "
              f"iterations {result.iterations:>5}  "
              f"reductions {led.counts()[0]:>6}  "
              f"modeled {t * 1e3:8.2f} ms @ {NRANKS} ranks")
    print(f"  speedup (family vs sequential): {t_seq / t_fam:.1f}x modeled, "
          f"{led_seq.counts()[0] / led_fam.counts()[0]:.1f}x fewer "
          f"reductions")
    print(f"  worst true shifted residual across the sweep: {worst:.2e}")


if __name__ == "__main__":
    run(int(sys.argv[1]) if len(sys.argv) > 1 else 5,
        int(sys.argv[2]) if len(sys.argv) > 2 else 8)
