#!/usr/bin/env python
"""Solve service demo: 32 queued requests coalesced into block solves.

Simulates an inference-style workload: 32 independent solve requests
arrive against two Poisson operators (24 for operator A, 8 for operator
B).  A ``SolveService`` with an LRU setup cache coalesces requests that
share an operator fingerprint into ``n x p`` block solves
(``service_pmax`` columns), builds the LU setup once per operator, and
attributes each request its exact amortized share of the batch cost.

The printed table shows, per request: the batch it landed in, the batch
width it shared, whether its batch hit the cached setup, and its
attributed reduction count — compare with the `solo` line, the cost of
the same solve submitted alone.

A second pass replays the same 32 requests through the *async* front
end (``make_service`` with ``service_mode="async"``): an event-loop
scheduler in simulated time with two cache shards, per-request
deadlines, and cross-batch pipelining.  It prints the modeled makespan,
per-shard batch counts, and the deadline-miss tally.

Run:  python examples/service_batching.py [grid_size]
"""

import sys
from pathlib import Path

if __package__ is None:  # allow running without PYTHONPATH=src
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

import numpy as np

from repro import Options, SolveService, solve
from repro.perfmodel.estimate import modeled_time
from repro.problems.poisson import poisson_2d
from repro.util import ledger


def run(nx: int = 32) -> None:
    a = poisson_2d(nx).a
    b_op = poisson_2d(nx).a * 1.5          # second operator, same structure
    rng = np.random.default_rng(20260705)
    n = a.shape[0]

    opts = Options(krylov_method="gmres", gmres_restart=40, tol=1e-8,
                   service_pmax=8, service_flush="queue_drained",
                   verify="cheap")
    svc = SolveService(options=opts, preconditioner="lu")

    # 32 requests: 24 against A, 8 against B, interleaved arrival order
    requests = []
    for j in range(32):
        op = b_op if j % 4 == 3 else a
        requests.append((op, svc.submit(op, rng.standard_normal(n))))
    print(f"2-D Poisson, {n} unknowns; 32 requests over 2 operators, "
          f"p_max={opts.service_pmax}\n")
    print(f"queued: {svc.pending} requests -> flush()")
    svc.flush()

    print(f"{'req':>4} {'batch':>6} {'width':>6} {'setup':>7} "
          f"{'cost (µs)':>10} {'residual':>10}")
    for j, (op, req) in enumerate(requests):
        res = req.result
        info = res.info["service"]
        assert res.converged.all()
        assert res.info["verify"]["violations"] == []
        rres = float(np.linalg.norm(req.b - op @ res.x)
                     / np.linalg.norm(req.b))
        setup = "hit" if info["setup_cache_hit"] else "build"
        cost_us = modeled_time(info["cost"], 64,
                               block_width=info["batch_width"]).total * 1e6
        print(f"{j:>4} {info['batch']:>6} {info['batch_width']:>6} "
              f"{setup:>7} {cost_us:>10.1f} {rres:>10.2e}")

    # the same solve, submitted alone (own LU build), for comparison
    from repro.direct.solver import SparseLU
    with ledger.install() as solo:
        lu = SparseLU(a)
        solve(a, requests[0][1].b, lu.as_preconditioner(),
              options=Options(krylov_method="gmres", gmres_restart=40,
                              tol=1e-8))
    print(f"{'solo':>4} {'-':>6} {1:>6} {'build':>7} "
          f"{modeled_time(solo, 64).total * 1e6:>10.1f}")

    stats = svc.cache.stats()
    widths = [rep["width"] for rep in svc.batches]
    builds = sum(not rep["setup_cache_hit"] for rep in svc.batches)
    print(f"\nbatches: {len(svc.batches)} (widths {widths})")
    print(f"setup built {builds}x for 2 operators across 32 requests; "
          f"cache hits {stats['total_hits']}, misses "
          f"{stats['total_misses']}, entries {stats['entries']}")

    run_async(a, b_op, rng, opts)


def run_async(a, b_op, rng, base_opts) -> None:
    """Replay the workload through the async event-loop front end."""
    from repro import make_service

    n = a.shape[0]
    opts = Options(krylov_method=base_opts.krylov_method,
                   gmres_restart=base_opts.gmres_restart,
                   tol=base_opts.tol, verify="cheap",
                   service_mode="async", service_pmax=8,
                   service_shards=2, service_deadline=5e-3)
    svc = make_service(options=opts, preconditioner="lu")

    # same mix: 32 requests over 2 operators, arriving 20 µs apart in
    # simulated time; the scheduler pipelines batches across arrivals
    reqs = []
    for j in range(32):
        op = b_op if j % 4 == 3 else a
        svc.advance_to(j * 2e-5)
        reqs.append(svc.submit(op, rng.standard_normal(n),
                               tenant=f"tenant-{j % 3}"))
    done = svc.drain()
    assert len(done) == 32 and all(r.rejected is None for r in reqs)
    assert all(r.result.converged.all() for r in reqs)

    misses = sum(r.result.info["service"]["deadline_missed"] for r in reqs)
    by_shard = {}
    for r in reqs:
        by_shard.setdefault(r.result.info["service"]["shard"], []).append(r)
    print(f"\nasync replay (mode={opts.service_mode}, "
          f"shards={opts.service_shards}, deadline "
          f"{opts.service_deadline * 1e3:.0f} ms):")
    for shard in sorted(by_shard):
        batches = {r.result.info["service"]["batch"]
                   for r in by_shard[shard]}
        print(f"  shard {shard}: {len(by_shard[shard])} requests in "
              f"{len(batches)} batches")
    print(f"  makespan {svc.makespan * 1e6:.1f} µs (simulated), "
          f"deadline misses {misses}/32")


if __name__ == "__main__":
    run(int(sys.argv[1]) if len(sys.argv) > 1 else 32)
