#!/usr/bin/env python
"""Quickstart: solve a sequence of linear systems with and without recycling.

Mirrors the artifact-description sanity check of the paper (appendix E):
solve four successive right-hand sides over one Poisson operator, first
with plain restarted GMRES, then with GCRO-DR reusing the recycled Krylov
subspace from solve to solve, and print the same three-column table
(system index, iterations, solve seconds).

Run:  python examples/quickstart.py [grid_size]
"""

import sys
import time

import numpy as np

from repro import Options, Solver, solve
from repro.problems.poisson import poisson_2d


def run(nx: int = 64) -> None:
    prob = poisson_2d(nx)
    rhss = prob.rhs_sequence()
    print(f"2-D Poisson, {prob.n} unknowns, {len(rhss)} successive RHSs\n")

    header = f"{'system':>6} {'iterations':>11} {'time (s)':>10}"

    # ---- baseline: restarted GMRES, no recycling ------------------------
    print("GMRES(30)")
    print(header)
    gmres_opts = Options(krylov_method="gmres", gmres_restart=30,
                         tol=1e-8, max_it=20000)
    total_it, total_t = 0, 0.0
    for i, b in enumerate(rhss, 1):
        t0 = time.perf_counter()
        res = solve(prob.a, b, options=gmres_opts)
        dt = time.perf_counter() - t0
        print(f"{i:>6} {res.iterations:>11} {dt:>10.4f}")
        total_it += res.iterations
        total_t += dt
    print("-" * 29)
    print(f"{'sum':>6} {total_it:>11} {total_t:>10.4f}\n")

    # ---- GCRO-DR(30, 10) with the same-system fast path ------------------
    print("GCRO-DR(30,10), recycling between solves")
    print(header)
    s = Solver(options=Options(krylov_method="gcrodr", gmres_restart=30,
                               recycle=10, tol=1e-8, max_it=20000,
                               recycle_same_system=True))
    total_it, total_t = 0, 0.0
    for i, b in enumerate(rhss, 1):
        t0 = time.perf_counter()
        res = s.solve(prob.a, b)
        dt = time.perf_counter() - t0
        print(f"{i:>6} {res.iterations:>11} {dt:>10.4f}")
        total_it += res.iterations
        total_t += dt
    print("-" * 29)
    print(f"{'sum':>6} {total_it:>11} {total_t:>10.4f}")
    print("\nRecycling pays from the second solve on: the harmonic-Ritz "
          "subspace deflates the slow modes that make GMRES(30) restart-bound.")


if __name__ == "__main__":
    run(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
