#!/usr/bin/env python
"""Microwave brain-imaging solver: block methods + recycling (paper §V).

The EMTensor-style scenario at laptop scale: a cylindrical imaging chamber
filled with dissipative matching solution (optionally with an immersed
plastic cylinder), excited by a ring of antennas — one right-hand side per
transmitting antenna.  The system is complex-symmetric and indefinite, so
standard preconditioners fail; the optimized Schwarz preconditioner
``M^-1_ORAS`` (eq. 6) with per-subdomain sparse direct solves and
impedance transmission conditions carries the day (Fig. 4), and block
methods then amortize each preconditioner application over all antennas
(Figs. 6 and 8).

Alternatives compared (a subset of the paper's Fig. 8 list):

1. consecutive GMRES(50), one antenna at a time      (the reference)
2. consecutive GCRO-DR(50,10), recycling between antennas
3. one pseudo-block GMRES(50) over all antennas
4. one Block GMRES(50) over all antennas
5. Block GCRO-DR(50,10) on sub-blocks of antennas    (the paper's winner)

Run:  python examples/maxwell_imaging.py [mesh_n] [antennas]
"""

import sys
import time

import numpy as np

from repro import Options, Solver, solve
from repro.precond.schwarz import SchwarzPreconditioner
from repro.problems.maxwell import (antenna_ring_rhs, decompose_maxwell,
                                    maxwell_chamber)


def run(n: int = 8, n_antennas: int = 16) -> None:
    print("assembling the imaging chamber (plastic cylinder immersed) ...")
    t0 = time.perf_counter()
    prob = maxwell_chamber(n, omega=8.0, inclusion_radius=0.15)
    b = antenna_ring_rhs(prob, n_antennas=n_antennas)
    print(f"  {prob.n} complex unknowns, {n_antennas} antenna RHSs "
          f"({time.perf_counter() - t0:.1f}s)")

    print("building the ORAS preconditioner (8 subdomains, overlap 2) ...")
    t0 = time.perf_counter()
    dec = decompose_maxwell(prob, 8, overlap=2, impedance=True)
    m = SchwarzPreconditioner(prob.a, variant="oras",
                              decomposition=dec.decomposition,
                              local_matrices=dec.local_matrices)
    t_setup = time.perf_counter() - t0
    print(f"  setup: {t_setup:.1f}s (factors once, reused by every solve)\n")

    base = Options(krylov_method="gmres", gmres_restart=50, tol=1e-8,
                   variant="right", max_it=4000)
    rows = []

    # 1) consecutive GMRES — the reference
    t0 = time.perf_counter()
    tot_it = 0
    for j in range(n_antennas):
        res = solve(prob.a, b[:, j], m, options=base)
        assert res.converged.all()
        tot_it += res.iterations
    t_ref = time.perf_counter() - t0
    rows.append(("consecutive GMRES(50)", 1, t_ref, tot_it, 1.0))

    # 2) consecutive GCRO-DR with recycling
    t0 = time.perf_counter()
    s = Solver(m, options=base.replace(krylov_method="gcrodr", recycle=10,
                                       recycle_same_system=True))
    tot_it = 0
    for j in range(n_antennas):
        res = s.solve(prob.a, b[:, j])
        assert res.converged.all()
        tot_it += res.iterations
    dt = time.perf_counter() - t0
    rows.append(("consecutive GCRO-DR(50,10)", 1, dt, tot_it, t_ref / dt))

    # 3) pseudo-block GMRES
    t0 = time.perf_counter()
    res = solve(prob.a, b, m, options=base)
    assert res.converged.all()
    dt = time.perf_counter() - t0
    rows.append(("pseudo-BGMRES(50)", n_antennas, dt, res.iterations,
                 t_ref / dt))

    # 4) Block GMRES
    t0 = time.perf_counter()
    res = solve(prob.a, b, m, options=base.replace(krylov_method="bgmres"))
    assert res.converged.all()
    dt = time.perf_counter() - t0
    rows.append(("BGMRES(50)", n_antennas, dt, res.iterations, t_ref / dt))

    # 5) Block GCRO-DR on sub-blocks (the paper's best alternative 7)
    sub = max(n_antennas // 2, 1)
    t0 = time.perf_counter()
    s = Solver(m, options=base.replace(krylov_method="bgcrodr", recycle=10,
                                       recycle_same_system=True))
    tot_it = 0
    for j in range(0, n_antennas, sub):
        res = s.solve(prob.a, b[:, j: j + sub])
        assert res.converged.all()
        tot_it += res.iterations
    dt = time.perf_counter() - t0
    rows.append((f"BGCRO-DR(50,10), blocks of {sub}", sub, dt, tot_it,
                 t_ref / dt))

    print(f"{'alternative':>30} {'p':>3} {'solve(s)':>9} {'iters':>6} "
          f"{'speedup':>8}")
    for name, p, dt, its, sp_ in rows:
        print(f"{name:>30} {p:>3} {dt:>9.1f} {its:>6} {sp_:>7.1f}x")
    print("\nBlock iterations advance all RHS columns at once, so their "
          "counts are not per-RHS comparable;\nwhat matters is wall clock — "
          "exactly the paper's Fig. 8 conclusion.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    p = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    run(n, p)
