#!/usr/bin/env python
"""The artifact description's modified PETSc ex32, as a Python CLI.

Accepts the same HPDDM-style options as the paper's artifact (appendix E):

    python examples/ex32_cli.py -hpddm_recycle_same_system \\
        -ksp_rtol 1.0e-6 -hpddm_recycle 10 -hpddm_krylov_method gcrodr \\
        -hpddm_gmres_restart 30 -da_grid_x 64 -da_grid_y 64

and prints the same two blocks of output — the reference method first,
then the HPDDM method — with columns (system index, iterations, solve
seconds).  Foreign PETSc-style options that matter here: ``-ksp_rtol``,
``-da_grid_x/-da_grid_y`` (grid size), ``-pc_type`` (``ssor``, ``jacobi``,
``gamg`` or ``none``).
"""

import sys
import time

import numpy as np

from repro import Options, Solver, parse_hpddm_args
from repro.precond.amg import SmoothedAggregationAMG
from repro.precond.simple import JacobiPreconditioner, SSORPreconditioner
from repro.problems.poisson import poisson_2d


def _petsc_value(args, name, default):
    if name in args:
        return args[args.index(name) + 1]
    return default


def run_sequence(prob, m, options, label):
    print(f"{label}")
    s = Solver(m, options=options)
    tot_it, tot_t = 0, 0.0
    for i, b in enumerate(prob.rhs_sequence(), 1):
        t0 = time.perf_counter()
        res = s.solve(prob.a, b)
        dt = time.perf_counter() - t0
        print(f"{i:>3} {res.iterations:>8} {dt:>12.6f}")
        tot_it += res.iterations
        tot_t += dt
    print("-" * 24)
    print(f"{tot_it:>12} {tot_t:>12.6f}\n")


def main(argv: list[str]) -> None:
    hpddm = parse_hpddm_args(argv)
    rtol = float(_petsc_value(argv, "-ksp_rtol", "1.0e-6"))
    nx = int(_petsc_value(argv, "-da_grid_x", "64"))
    ny = int(_petsc_value(argv, "-da_grid_y", str(nx)))
    pc = _petsc_value(argv, "-pc_type", "ssor")

    prob = poisson_2d(nx, ny)
    if pc == "ssor":
        m = SSORPreconditioner(prob.a)
    elif pc == "jacobi":
        m = JacobiPreconditioner(prob.a)
    elif pc == "gamg":
        m = SmoothedAggregationAMG(prob.a)
    elif pc == "none":
        m = None
    else:
        raise SystemExit(f"unsupported -pc_type {pc}")

    reference = Options(krylov_method="gmres",
                        gmres_restart=hpddm.gmres_restart,
                        tol=rtol, variant=hpddm.variant, max_it=50000)
    method = hpddm.replace(tol=rtol, max_it=50000)

    print(f"2-D Poisson, {prob.n} unknowns, 4 RHSs, pc_type={pc}\n")
    run_sequence(prob, m, reference, "Reference (GMRES)")
    run_sequence(prob, m, method, f"HPDDM-style ({method.krylov_method.upper()})")


if __name__ == "__main__":
    main(sys.argv[1:])
