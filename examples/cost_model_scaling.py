#!/usr/bin/env python
"""Communication accounting and modeled scaling — the paper's §III-D.

The paper's scalability argument is a *counting* argument: a GCRO-DR cycle
costs ``2(m - k)`` global reductions where a GMRES cycle costs ``m``, and
CholQR keeps every distributed tall-skinny QR at a single reduction.  This
example makes those counts visible:

1. solve one system with GMRES(30) and with GCRO-DR(30,10) on a
   row-distributed operator, with the cost ledger recording every
   reduction, halo message, and flop;
2. print the measured per-cycle reduction counts next to the paper's
   formulas;
3. feed the measured event stream to the Curie-like machine model and
   print the modeled time breakdown at the paper's process counts —
   showing where the log2(P) reduction tree starts to dominate.

Run:  python examples/cost_model_scaling.py [n]
"""

import sys

import numpy as np
import scipy.sparse as sp

from repro import Options, Solver, install_ledger
from repro.distla.distcsr import DistributedCSR
from repro.perfmodel.estimate import modeled_time
from repro.perfmodel.machine import CURIE


def run(n: int = 800) -> None:
    # mildly shifted 1-D Laplacian: hard enough to need many restart
    # cycles, easy enough that plain GMRES(30) still converges
    a = sp.diags([-np.ones(n - 1), 2.05 * np.ones(n), -np.ones(n - 1)],
                 [-1, 0, 1]).tocsr()
    dist = DistributedCSR(a, nranks=8)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(n)

    print(f"1-D Laplacian, {n} unknowns, distributed over "
          f"{dist.grid.nranks} virtual ranks\n")

    events = {}
    for label, opts in [
            ("GMRES(30)", Options(krylov_method="gmres", gmres_restart=30,
                                  tol=1e-8, max_it=20000)),
            ("GCRO-DR(30,10)", Options(krylov_method="gcrodr",
                                       gmres_restart=30, recycle=10,
                                       tol=1e-8, max_it=20000))]:
        s = Solver(options=opts)
        with install_ledger() as led:
            res = s.solve(dist, b)
        assert res.converged.all(), label
        events[label] = (res, led)
        per_cycle = led.reductions / max(res.restarts, 1)
        per_it = led.reductions / max(res.iterations, 1)
        print(f"{label:>16}: {res.iterations:5d} iterations, "
              f"{res.restarts:3d} cycles, {led.reductions:5d} reductions "
              f"({per_it:.1f}/iteration, {per_cycle:.0f}/cycle)")
        print(f"{'':>16}  halo: {led.p2p_messages} messages, "
              f"{led.p2p_bytes / 1e3:.0f} kB; flops: {led.total_flops():.2e}")
    print()
    print("paper §III-D: a GMRES cycle needs m reductions, a GCRO-DR cycle "
          "2(m-k);\nwith k = m/3 both methods synchronize at a similar "
          "per-cycle rate while GCRO-DR\nconverges in far fewer cycles.\n")

    res, led = events["GCRO-DR(30,10)"]
    print("modeled time of the GCRO-DR solve on a Curie-like machine:")
    print(f"{'ranks':>7} {'total':>12} {'compute':>12} {'reductions':>12} "
          f"{'halo':>10}")
    for p in (8, 64, 512, 4096):
        t = modeled_time(led, p, machine=CURIE)
        print(f"{p:>7} {t.total:>11.2e}s {t.compute:>11.2e}s "
              f"{t.reduction:>11.2e}s {t.p2p:>9.2e}s")
    print("\nAt this (laptop) problem size the log2(P) reduction tree "
          "dominates beyond a few\nhundred ranks — the regime in which the "
          "paper's fewer-synchronizations engineering\n(CholQR, strategy B, "
          "same-system fast path) is the difference between scaling and "
          "not.")


if __name__ == "__main__":
    run(int(sys.argv[1]) if len(sys.argv) > 1 else 800)
